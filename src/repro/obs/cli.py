"""``repro-trace``: run a traced workload and print an attribution report.

Three subcommands:

* ``check`` — deploy a profile, run the SCOUT pipeline under a collector
  and print the stage → total/self time table.  ``--chrome``/``--jsonl``
  additionally export the raw trace for ``chrome://tracing`` / Perfetto or
  offline analysis.
* ``parallel`` — the ROADMAP-item-1 measurement from the command line:
  time a serial full check, then a traced parallel check, and print the
  wall-clock decomposition (plan / pickle / worker spawn+IPC / in-worker
  BDD build / check / serialize / merge) with its coverage of measured
  wall time.  ``--json`` writes the same breakdown as machine-readable
  JSON (the shape ``benchmarks/bench_parallel.py`` embeds in
  ``BENCH_parallel.json``).
* ``flightrecord`` — pretty-print a dumped black-box bundle (from
  ``GET /incidents/{id}/flightrecord`` or the service logs): trigger,
  correlation id, the buffered span tree, and the events leading up to
  the dump.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional, Sequence

from ..controller.controller import Controller
from ..core.system import ScoutSystem
from ..workloads.generator import generate_workload
from ..workloads.profiles import profile_names, resolve_profile
from .export import write_chrome, write_jsonl
from .recorder import format_flightrecord
from .report import (
    attribution,
    format_attribution,
    format_stage_breakdown,
    parallel_stage_breakdown,
)
from .trace import TraceCollector

__all__ = ["main"]


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default="small",
        help=f"workload profile to deploy ({', '.join(profile_names())})",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's RNG seed"
    )


def _deploy(profile_name: str, seed: Optional[int]) -> ScoutSystem:
    profile = resolve_profile(profile_name, seed=seed)
    workload = generate_workload(profile)
    controller = Controller(workload.policy, workload.fabric)
    controller.deploy()
    return ScoutSystem(controller)


def _cmd_check(args: argparse.Namespace) -> int:
    system = _deploy(args.profile, args.seed)
    collector = TraceCollector()
    start = time.perf_counter()
    report = system.localize(
        parallel=args.parallel, max_workers=args.workers, trace=collector
    )
    wall = time.perf_counter() - start
    spans = collector.spans()
    print(
        f"[repro-trace] profile {args.profile!r}: {len(spans)} span(s) "
        f"in {wall:.3f}s, consistent={report.consistent}"
    )
    print(format_attribution(attribution(spans), wall_seconds=wall))
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        print(f"[repro-trace] wrote {count} span(s) to {args.jsonl}")
    if args.chrome:
        count = write_chrome(spans, args.chrome)
        print(
            f"[repro-trace] wrote {count} event(s) to {args.chrome} "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        )
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    system = _deploy(args.profile, args.seed)

    serial_start = time.perf_counter()
    serial_report = system.check()
    serial_wall = time.perf_counter() - serial_start

    collector = TraceCollector()
    parallel_start = time.perf_counter()
    parallel_report = system.check(
        parallel=True, max_workers=args.workers, trace=collector
    )
    parallel_wall = time.perf_counter() - parallel_start

    identical = parallel_report.fingerprint() == serial_report.fingerprint()
    breakdown = parallel_stage_breakdown(
        collector.spans(), parallel_wall, args.workers
    )
    breakdown["serial_seconds"] = serial_wall
    breakdown["speedup"] = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    breakdown["reports_identical"] = identical

    print(
        f"[repro-trace] profile {args.profile!r}: serial {serial_wall:.3f}s, "
        f"parallel {parallel_wall:.3f}s ({breakdown['speedup']:.2f}x), "
        f"reports identical: {identical}"
    )
    print(format_stage_breakdown(breakdown))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(breakdown, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[repro-trace] wrote breakdown to {args.json}")
    return 0 if identical else 1


def _cmd_flightrecord(args: argparse.Namespace) -> int:
    with open(args.path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    # Accept both a bare bundle and the service's {"flightrecord": {...}}
    # response envelope, so a curl output file works unmodified.
    bundle = payload.get("flightrecord", payload) if isinstance(payload, dict) else None
    if not isinstance(bundle, dict) or "trigger" not in bundle:
        print(f"[repro-trace] {args.path}: not a flight-record bundle")
        return 1
    print(format_flightrecord(bundle, max_events=args.events))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run a traced workload and print a perf-attribution report.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="trace the SCOUT pipeline and print stage attribution"
    )
    _add_profile_arguments(check)
    check.add_argument(
        "--parallel",
        action="store_true",
        help="run the equivalence sweep through the sharded parallel engine",
    )
    check.add_argument("--workers", type=int, default=None, help="parallel workers")
    check.add_argument("--chrome", default=None, help="write a Chrome trace JSON here")
    check.add_argument("--jsonl", default=None, help="write raw spans as JSONL here")
    check.set_defaults(func=_cmd_check)

    par = commands.add_parser(
        "parallel",
        help="decompose one parallel check's wall time into named stages",
    )
    _add_profile_arguments(par)
    par.add_argument("--workers", type=int, default=4, help="parallel workers")
    par.add_argument("--json", default=None, help="write the breakdown JSON here")
    par.set_defaults(func=_cmd_parallel)

    flight = commands.add_parser(
        "flightrecord",
        help="pretty-print a dumped flight-recorder black-box bundle",
    )
    flight.add_argument("path", help="JSON bundle file (bare or service envelope)")
    flight.add_argument(
        "--events",
        type=int,
        default=10,
        help="how many trailing events to show (default 10)",
    )
    flight.set_defaults(func=_cmd_flightrecord)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
