"""Component health registry and rolling-window SLO tracking.

Two small primitives back ``GET /health`` and ``GET /slo``:

:class:`HealthRegistry` holds named probe callables — monitor lag, pool
respawn rate, job-queue depth, memo-cache hit rate, bus backlog — each
returning a :class:`ComponentHealth`.  Probes run at read time (a health
check that reports cached state is a health check that lies during an
outage), and a probe that *raises* is itself a failing component.

:class:`SloTracker` keeps one bounded deque of boolean outcomes per
objective (request served non-5xx, job succeeded, monitor drained its
backlog) and derives window attainment plus the **burn rate**: the ratio of
the observed error rate to the error budget the target allows.  Burn rate
``1.0`` means the budget is being spent exactly as fast as it accrues;
``> 2`` means the window is failing the objective outright.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["ComponentHealth", "HealthRegistry", "HealthStatus", "SloTracker"]


class HealthStatus(str, Enum):
    OK = "ok"
    DEGRADED = "degraded"
    FAILING = "failing"

    @property
    def code(self) -> int:
        """Numeric severity for the ``repro_health_status`` gauge (0/1/2)."""
        return _SEVERITY[self]


_SEVERITY = {HealthStatus.OK: 0, HealthStatus.DEGRADED: 1, HealthStatus.FAILING: 2}


@dataclass
class ComponentHealth:
    """One component's verdict plus the numbers that justify it."""

    name: str
    status: HealthStatus
    detail: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status.value,
            "detail": self.detail,
            "metrics": dict(self.metrics),
        }


class HealthRegistry:
    """Named live probes; the overall status is the worst component's."""

    def __init__(self) -> None:
        self._probes: Dict[str, Callable[[], ComponentHealth]] = {}

    def register(self, name: str, probe: Callable[[], ComponentHealth]) -> None:
        self._probes[name] = probe

    def names(self) -> List[str]:
        return sorted(self._probes)

    def probe(self, name: str) -> ComponentHealth:
        """Run one probe; a raising probe is a FAILING component, not a 500."""
        try:
            return self._probes[name]()
        except KeyError:
            raise
        except Exception as exc:  # noqa: BLE001 - fold into the verdict
            return ComponentHealth(
                name=name,
                status=HealthStatus.FAILING,
                detail=f"probe raised: {exc!r}",
            )

    def report(self) -> Dict[str, Any]:
        components = [self.probe(name) for name in self.names()]
        worst = max(
            (component.status for component in components),
            key=lambda status: status.code,
            default=HealthStatus.OK,
        )
        return {
            "status": worst.value,
            "components": {c.name: c.to_dict() for c in components},
        }


class SloTracker:
    """Rolling-window service-level objectives with burn-rate status."""

    def __init__(self, window: int = 512) -> None:
        self._window = window
        self._targets: Dict[str, float] = {}
        self._descriptions: Dict[str, str] = {}
        self._outcomes: Dict[str, Deque[bool]] = {}

    def define(self, name: str, target: float, description: str = "") -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target!r}")
        self._targets[name] = target
        self._descriptions[name] = description
        self._outcomes.setdefault(name, deque(maxlen=self._window))

    def names(self) -> List[str]:
        return sorted(self._targets)

    def target(self, name: str) -> float:
        return self._targets[name]

    def record(self, name: str, ok: bool) -> None:
        """Record one outcome; unknown names are dropped so call sites stay
        decoupled from which objectives the service chose to define."""
        outcomes = self._outcomes.get(name)
        if outcomes is not None:
            outcomes.append(bool(ok))

    def attainment(self, name: str) -> float:
        """Fraction of good outcomes in the window; 1.0 when still empty."""
        outcomes = self._outcomes[name]
        if not outcomes:
            return 1.0
        return sum(outcomes) / len(outcomes)

    def burn_rate(self, name: str) -> float:
        """Observed error rate over the error budget (``1 - target``)."""
        budget = 1.0 - self._targets[name]
        return (1.0 - self.attainment(name)) / budget

    def status(self, name: str) -> HealthStatus:
        burn = self.burn_rate(name)
        if burn > 2.0:
            return HealthStatus.FAILING
        if burn > 1.0:
            return HealthStatus.DEGRADED
        return HealthStatus.OK

    def snapshot(self, name: Optional[str] = None) -> Dict[str, Any]:
        """JSON form of one SLO, or of all of them keyed by name."""
        if name is not None:
            outcomes = self._outcomes[name]
            return {
                "name": name,
                "description": self._descriptions[name],
                "target": self._targets[name],
                "window": len(outcomes),
                "attainment": self.attainment(name),
                "burn_rate": self.burn_rate(name),
                "status": self.status(name).value,
            }
        return {slo: self.snapshot(slo) for slo in self.names()}
