"""Turn raw spans into attribution reports.

Two consumers:

* :func:`attribution` / :func:`format_attribution` — the generic "where did
  the time go" table printed by ``repro-trace``: per stage name, how many
  spans, total (inclusive) seconds, and self (exclusive) seconds.
* :func:`parallel_stage_breakdown` — the ROADMAP-item-1 measurement: a
  decomposition of one parallel ``ScoutSystem.check`` wall-clock into named
  stages (plan / pickle / worker spawn+IPC / in-worker unpickle, BDD build,
  check, serialize / merge) that should tile the measured wall time.
  Worker-side busy time is normalised by the number of concurrently busy
  workers so the stages are wall-clock-comparable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from .export import SpanLike, span_dicts

__all__ = [
    "StageStat",
    "attribution",
    "format_attribution",
    "format_stage_breakdown",
    "parallel_stage_breakdown",
]


@dataclass
class StageStat:
    """Aggregated timing for all spans sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "self_seconds": self.self_seconds,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        return payload


def _durations(payload: Dict[str, Any]) -> float:
    return max(0.0, float(payload["end"]) - float(payload["start"]))


def attribution(spans: Iterable[SpanLike]) -> List[StageStat]:
    """Aggregate spans by name into total/self time, sorted by total desc.

    Self time is a span's duration minus the duration of its direct
    children, clamped at zero (adopted worker spans run concurrently, so a
    parent's children can legitimately sum past its own duration).
    """
    payloads = span_dicts(spans)
    child_time: Dict[int, float] = defaultdict(float)
    for payload in payloads:
        parent_id = payload.get("parent_id")
        if parent_id is not None:
            child_time[parent_id] += _durations(payload)

    stats: Dict[str, StageStat] = {}
    for payload in payloads:
        stat = stats.get(payload["name"])
        if stat is None:
            stat = stats[payload["name"]] = StageStat(payload["name"])
        duration = _durations(payload)
        stat.count += 1
        stat.total_seconds += duration
        stat.self_seconds += max(
            0.0, duration - child_time.get(payload["span_id"], 0.0)
        )
        for key, value in payload.get("counters", {}).items():
            stat.counters[key] = stat.counters.get(key, 0.0) + value
    return sorted(stats.values(), key=lambda s: (-s.total_seconds, s.name))


def format_attribution(
    stats: Sequence[StageStat], wall_seconds: Optional[float] = None
) -> str:
    """Render an attribution table as fixed-width text."""
    name_width = max([len("stage")] + [len(stat.name) for stat in stats])
    header = f"{'stage':<{name_width}}  {'count':>7}  {'total s':>10}  {'self s':>10}"
    if wall_seconds:
        header += f"  {'% wall':>7}"
    lines = [header, "-" * len(header)]
    for stat in stats:
        line = (
            f"{stat.name:<{name_width}}  {stat.count:>7}  "
            f"{stat.total_seconds:>10.4f}  {stat.self_seconds:>10.4f}"
        )
        if wall_seconds:
            line += f"  {100.0 * stat.total_seconds / wall_seconds:>6.1f}%"
        lines.append(line)
        if stat.counters:
            rendered = ", ".join(
                f"{key}={int(value) if float(value).is_integer() else value}"
                for key, value in sorted(stat.counters.items())
            )
            lines.append(f"{'':<{name_width}}    [{rendered}]")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Parallel wall-clock decomposition
# ---------------------------------------------------------------------- #
def _descendant_ids(payloads: List[Dict[str, Any]], root_names: Set[str]) -> Set[int]:
    """Span ids that are (transitive) descendants of any span named in roots."""
    children: Dict[Optional[int], List[int]] = defaultdict(list)
    for payload in payloads:
        children[payload.get("parent_id")].append(payload["span_id"])
    stack = [p["span_id"] for p in payloads if p["name"] in root_names]
    inside: Set[int] = set()
    while stack:
        span_id = stack.pop()
        for child_id in children.get(span_id, ()):
            if child_id not in inside:
                inside.add(child_id)
                stack.append(child_id)
    return inside


def parallel_stage_breakdown(
    spans: Iterable[SpanLike],
    wall_seconds: float,
    workers: int,
) -> Dict[str, Any]:
    """Decompose a traced parallel check into wall-clock-comparable stages.

    Serial stages (compile, collect, plan, pickle, merge) contribute their
    duration directly.  Worker-side stages ran on up to ``workers``
    processes concurrently, so their busy time is divided by the number of
    workers actually used before being compared against wall clock.  The
    ``worker_spawn_and_ipc`` stage is the dispatch window not accounted for
    by normalised worker busy time: pool construction, process spawn,
    argument pickling transit, and result transit.  The ``cache`` block
    aggregates the per-shard memo-cache counters (``cache_hits`` /
    ``cache_misses`` on each ``worker.shard`` span), so the breakdown also
    says *why* a warm round was fast.
    """
    payloads = span_dicts(spans)
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    cache_hits = 0
    cache_misses = 0
    for payload in payloads:
        totals[payload["name"]] += _durations(payload)
        counts[payload["name"]] += 1
        if payload["name"] == "worker.shard":
            counters = payload.get("counters", {})
            cache_hits += int(counters.get("cache_hits", 0))
            cache_misses += int(counters.get("cache_misses", 0))

    shard_count = counts.get("worker.shard", 0)
    workers_used = max(1, min(workers, shard_count))
    worker_busy = totals.get("worker.shard", 0.0)

    in_worker = _descendant_ids(payloads, {"worker.check"})
    bdd_build_in_worker = sum(
        _durations(p)
        for p in payloads
        if p["name"] == "verify.bdd.build" and p["span_id"] in in_worker
    )

    def norm(seconds: float) -> float:
        return seconds / workers_used

    dispatch = totals.get("parallel.dispatch", 0.0)
    stages = {
        "compile_logical": totals.get("check.compile_logical", 0.0),
        "collect_deployed": totals.get("check.collect_deployed", 0.0),
        "plan": totals.get("parallel.plan", 0.0),
        "pickle": totals.get("parallel.build_tasks", 0.0),
        "worker_spawn_and_ipc": totals.get("parallel.pool", 0.0)
        + max(0.0, dispatch - norm(worker_busy)),
        "worker_unpickle": norm(totals.get("worker.unpickle", 0.0)),
        "worker_bdd_build": norm(bdd_build_in_worker),
        "worker_check": norm(
            max(0.0, totals.get("worker.check", 0.0) - bdd_build_in_worker)
        ),
        "worker_serialize": norm(totals.get("worker.serialize", 0.0)),
        "merge": totals.get("parallel.merge", 0.0),
    }
    accounted = sum(stages.values())
    coverage = accounted / wall_seconds if wall_seconds > 0 else 0.0
    dominant = max(stages, key=lambda name: stages[name]) if stages else ""
    cache_total = cache_hits + cache_misses
    return {
        "wall_seconds": wall_seconds,
        "workers": workers,
        "workers_used": workers_used,
        "shards": shard_count,
        "stages": stages,
        "accounted_seconds": accounted,
        "coverage": coverage,
        "dominant_stage": dominant,
        # Worker memo-cache activity for the traced round, aggregated from
        # the per-shard counters: a warm round shows hit_rate near 1.0, a
        # cold round exactly 0.0.
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": cache_hits / cache_total if cache_total else 0.0,
        },
    }


def format_stage_breakdown(breakdown: Dict[str, Any]) -> str:
    """Render a :func:`parallel_stage_breakdown` result as a text table."""
    wall = breakdown["wall_seconds"]
    stages: Dict[str, float] = breakdown["stages"]
    name_width = max(len("stage"), max(len(name) for name in stages))
    header = f"{'stage':<{name_width}}  {'seconds':>10}  {'% wall':>7}"
    lines = [
        f"parallel wall: {wall:.4f}s  workers: {breakdown['workers']}"
        f" (used {breakdown['workers_used']}, {breakdown['shards']} shards)",
        header,
        "-" * len(header),
    ]
    for name, seconds in sorted(stages.items(), key=lambda item: -item[1]):
        share = 100.0 * seconds / wall if wall > 0 else 0.0
        lines.append(f"{name:<{name_width}}  {seconds:>10.4f}  {share:>6.1f}%")
    lines.append(
        f"accounted: {breakdown['accounted_seconds']:.4f}s"
        f" ({100.0 * breakdown['coverage']:.1f}% of wall)"
        f"  dominant: {breakdown['dominant_stage']}"
    )
    return "\n".join(lines)
