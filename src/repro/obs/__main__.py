"""``python -m repro.obs`` — alias for the ``repro-trace`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
