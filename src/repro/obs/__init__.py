"""Dependency-free tracing & profiling for the reproduction.

Quick start::

    from repro.obs import TraceCollector, activated, span

    collector = TraceCollector()
    with activated(collector):
        with span("my.stage", shape="demo") as s:
            s.count("items", 3)
            ...

    from repro.obs import attribution, format_attribution
    print(format_attribution(attribution(collector.spans())))

Instrumented code calls :func:`span` unconditionally; when no collector is
active the call returns a shared no-op object, so tracing costs almost
nothing when disabled.
"""

from .export import chrome_trace, read_jsonl, span_dicts, write_chrome, write_jsonl
from .report import (
    StageStat,
    attribution,
    format_attribution,
    format_stage_breakdown,
    parallel_stage_breakdown,
)
from .trace import (
    NOOP_SPAN,
    Span,
    TraceCollector,
    activated,
    current,
    install,
    span,
    traced,
    uninstall,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "StageStat",
    "TraceCollector",
    "activated",
    "attribution",
    "chrome_trace",
    "current",
    "format_attribution",
    "format_stage_breakdown",
    "install",
    "parallel_stage_breakdown",
    "read_jsonl",
    "span",
    "span_dicts",
    "traced",
    "uninstall",
    "write_chrome",
    "write_jsonl",
]
