"""Dependency-free tracing & profiling for the reproduction.

Quick start::

    from repro.obs import TraceCollector, activated, span

    collector = TraceCollector()
    with activated(collector):
        with span("my.stage", shape="demo") as s:
            s.count("items", 3)
            ...

    from repro.obs import attribution, format_attribution
    print(format_attribution(attribution(collector.spans())))

Instrumented code calls :func:`span` unconditionally; when no collector is
active the call returns a shared no-op object, so tracing costs almost
nothing when disabled.

Beyond profiling, the package carries the operator-debugging layer:
:mod:`~repro.obs.corr` (correlation ids propagated onto every span),
:mod:`~repro.obs.recorder` (the flight recorder dumped when something
breaks), and :mod:`~repro.obs.health` (component health + SLO burn rates).
"""

from .corr import correlated, current_corr_id, new_corr_id, set_corr_id
from .export import chrome_trace, read_jsonl, span_dicts, write_chrome, write_jsonl
from .health import ComponentHealth, HealthRegistry, HealthStatus, SloTracker
from .recorder import (
    FlightRecorder,
    current_recorder,
    dump_flightrecord,
    format_flightrecord,
    record_event,
    recording,
)
from .report import (
    StageStat,
    attribution,
    format_attribution,
    format_stage_breakdown,
    parallel_stage_breakdown,
)
from .trace import (
    NOOP_SPAN,
    Span,
    TraceCollector,
    activated,
    current,
    install,
    span,
    traced,
    uninstall,
)

__all__ = [
    "NOOP_SPAN",
    "ComponentHealth",
    "FlightRecorder",
    "HealthRegistry",
    "HealthStatus",
    "SloTracker",
    "Span",
    "StageStat",
    "TraceCollector",
    "activated",
    "attribution",
    "chrome_trace",
    "correlated",
    "current",
    "current_corr_id",
    "current_recorder",
    "dump_flightrecord",
    "format_attribution",
    "format_flightrecord",
    "format_stage_breakdown",
    "install",
    "new_corr_id",
    "parallel_stage_breakdown",
    "read_jsonl",
    "record_event",
    "recording",
    "set_corr_id",
    "span",
    "span_dicts",
    "traced",
    "uninstall",
    "write_chrome",
    "write_jsonl",
]
