"""Trace exporters: JSONL (round-trippable) and Chrome ``trace_event``.

The Chrome format is the `trace_event` JSON understood by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
events (``ph: "X"``) with microsecond timestamps, grouped by ``pid`` /
``tid`` tracks.  Span ``perf_counter`` timebases are per-process, so
events from worker processes land on their own track rather than being
aligned against the parent — durations, which is what attribution cares
about, are exact either way.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from .trace import Span

__all__ = [
    "chrome_trace",
    "read_jsonl",
    "span_dicts",
    "write_chrome",
    "write_jsonl",
]

SpanLike = Union[Span, Dict[str, Any]]


def span_dicts(spans: Iterable[SpanLike]) -> List[Dict[str, Any]]:
    """Normalise a mix of :class:`Span` objects and plain dicts to dicts."""
    return [item.to_dict() if isinstance(item, Span) else dict(item) for item in spans]


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #
def write_jsonl(spans: Iterable[SpanLike], path: str) -> int:
    """Write one span dict per line; returns the number of spans written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for payload in span_dicts(spans):
            handle.write(json.dumps(payload, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read span dicts back from a JSONL file (blank lines ignored)."""
    payloads: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                payloads.append(json.loads(line))
    return payloads


# ---------------------------------------------------------------------- #
# Chrome trace_event
# ---------------------------------------------------------------------- #
def chrome_trace(spans: Sequence[SpanLike]) -> Dict[str, Any]:
    """Convert spans to a ``chrome://tracing`` / Perfetto JSON object."""
    events: List[Dict[str, Any]] = []
    for payload in span_dicts(spans):
        args: Dict[str, Any] = {}
        args.update(payload.get("attrs", {}))
        args.update(payload.get("counters", {}))
        start = float(payload["start"])
        end = float(payload["end"])
        events.append(
            {
                "name": payload["name"],
                "cat": "repro",
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "pid": payload.get("pid", 0),
                "tid": payload.get("thread_id", 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: Sequence[SpanLike], path: str) -> int:
    """Write a Chrome trace JSON file; returns the number of events."""
    trace = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return len(trace["traceEvents"])
