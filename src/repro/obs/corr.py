"""Correlation IDs: one ContextVar-propagated identity per unit of work.

Every externally triggered unit of work — an HTTP request, a monitor poll,
a churn event, a campaign cell — mints (or inherits) a **correlation id**
and runs under it.  Spans opened while a corr id is active are stamped with
it (see :meth:`repro.obs.trace.Span.__enter__`), flight-recorder events
carry it, and incidents remember the id of the poll that opened them — so
"which request caused this incident, and what did the checker do for it?"
is one grep over ids instead of a timestamp hunt.

The id travels the same way the active :class:`~repro.obs.trace.TraceCollector`
does: a :class:`~contextvars.ContextVar`, so nested work on the same thread
inherits it for free and worker processes get it shipped explicitly (the
:class:`~repro.parallel.engine.ShardTask` carries the parent's id and
:func:`~repro.parallel.engine.run_shard` restores it with
:func:`correlated`).

Ids are readable and cheap: ``req-1a2b-000007`` is the seventh id minted by
pid ``0x1a2b`` under the ``req`` prefix.  No randomness — the repo's
determinism discipline extends to its debugging artifacts.

This module is distinct from :mod:`repro.core.correlation`, the paper's
SCOUT event-correlation *stage*; the shared word is a coincidence of domain.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

__all__ = ["correlated", "current_corr_id", "new_corr_id", "set_corr_id"]

_ACTIVE_CORR: ContextVar[Optional[str]] = ContextVar("repro_corr_id", default=None)

_COUNTER = itertools.count(1)


def new_corr_id(prefix: str = "corr") -> str:
    """Mint a fresh correlation id: ``<prefix>-<pid hex>-<counter hex>``."""
    return f"{prefix}-{os.getpid():x}-{next(_COUNTER):06x}"


def current_corr_id() -> Optional[str]:
    """The ambient correlation id, or ``None`` outside any correlated work."""
    return _ACTIVE_CORR.get()


def set_corr_id(corr_id: Optional[str]) -> None:
    """Set the ambient id directly (worker processes restoring a shipped id)."""
    _ACTIVE_CORR.set(corr_id)


@contextmanager
def correlated(corr_id: Optional[str] = None, prefix: str = "corr") -> Iterator[str]:
    """Run the block under a correlation id; yields the id in effect.

    An explicit ``corr_id`` always wins.  Otherwise the ambient id is
    reused when one is active — a monitor poll triggered by an HTTP request
    joins that request's trail — and a fresh one is minted under ``prefix``
    when none is, so standalone polls, churn events and campaign cells each
    get their own identity.
    """
    active = corr_id if corr_id is not None else _ACTIVE_CORR.get()
    if active is None:
        active = new_corr_id(prefix)
    token = _ACTIVE_CORR.set(active)
    try:
        yield active
    finally:
        _ACTIVE_CORR.reset(token)
