"""Hierarchical spans and a process-local trace collector.

The reproduction needs per-stage attribution of verification cost (where do
the milliseconds go: BDD construction, pickling, worker startup, shard
execution?).  This module provides the primitive: a **span** — a named,
timed region with typed attributes and counter deltas — and a
``TraceCollector`` that records finished spans.

Design constraints, in order:

* **near-zero cost when disabled** — every instrumented hot path calls the
  free function :func:`span`; when no collector is active (or the active
  collector is disabled) it returns a shared no-op object whose context
  manager protocol does nothing.  The fast path is one ``ContextVar.get``
  plus one attribute check.
* **dependency-free** — stdlib only, like the rest of the repo.
* **thread- and process-aware** — spans record ``pid`` and ``thread_id``;
  the parent/child relationship is tracked per thread, and spans recorded
  in worker processes can be shipped back as plain dicts and re-attached to
  a parent trace with :meth:`TraceCollector.adopt`.

Timestamps are ``time.perf_counter()`` values: durations are exact within a
process, absolute values are only comparable within one process (the Chrome
exporter keys on ``pid`` so cross-process traces still render sensibly).
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .corr import current_corr_id

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TraceCollector",
    "activated",
    "current",
    "install",
    "span",
    "traced",
    "uninstall",
]

AttrValue = Union[str, int, float, bool]


class _NoopSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: AttrValue) -> "_NoopSpan":
        return self

    def count(self, name: str, delta: float = 1) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """A timed, named region of work.

    Use as a context manager; timing starts at ``__enter__`` and stops at
    ``__exit__``, at which point the span is handed to its collector.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "pid",
        "thread_id",
        "start",
        "end",
        "attrs",
        "counters",
        "_collector",
    )

    def __init__(
        self,
        collector: "TraceCollector",
        name: str,
        attrs: Optional[Dict[str, AttrValue]] = None,
    ) -> None:
        self.name = name
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.pid = os.getpid()
        self.thread_id = threading.get_ident()
        self.start = 0.0
        self.end = 0.0
        self.attrs: Dict[str, AttrValue] = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self._collector = collector

    # ------------------------------------------------------------------ #
    # Context manager protocol
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        collector = self._collector
        self.span_id = next(collector._ids)
        stack = collector._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        corr = current_corr_id()
        if corr is not None and "corr_id" not in self.attrs:
            self.attrs["corr_id"] = corr
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        stack = self._collector._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit — drop self wherever it is, keep going
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._collector._finish(self)

    # ------------------------------------------------------------------ #
    # Annotation
    # ------------------------------------------------------------------ #
    def set(self, key: str, value: AttrValue) -> "Span":
        """Attach a typed attribute (str/int/float/bool)."""
        self.attrs[key] = value
        return self

    def count(self, name: str, delta: float = 1) -> "Span":
        """Accumulate a named counter delta on this span."""
        self.counters[name] = self.counters.get(name, 0) + delta
        return self

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.counters:
            payload["counters"] = dict(self.counters)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], collector: "TraceCollector") -> "Span":
        restored = cls(collector, payload["name"], payload.get("attrs"))
        restored.span_id = payload["span_id"]
        restored.parent_id = payload.get("parent_id")
        restored.pid = payload.get("pid", os.getpid())
        restored.thread_id = payload.get("thread_id", 0)
        restored.start = payload["start"]
        restored.end = payload["end"]
        restored.counters = dict(payload.get("counters", {}))
        return restored

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration:.6f}s)"


class TraceCollector:
    """Process-local store of finished spans.

    ``enabled=False`` makes every :meth:`span` call return :data:`NOOP_SPAN`,
    so instrumentation left in hot paths costs one boolean check.
    ``max_spans`` bounds memory; spans finished past the cap are counted in
    :attr:`dropped` instead of stored.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._ids = itertools.count(1)
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sinks: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: AttrValue) -> Union[Span, _NoopSpan]:
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs or None)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, finished: Span) -> None:
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(finished)
            else:
                self.dropped += 1
            sinks = list(self._sinks)
        for sink in sinks:
            sink(finished)

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Register a callback invoked (outside the lock) per finished span."""
        with self._lock:
            self._sinks.append(sink)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # ------------------------------------------------------------------ #
    # Cross-process adoption
    # ------------------------------------------------------------------ #
    def adopt(
        self,
        payloads: Sequence[Dict[str, Any]],
        parent: Optional[Union[Span, int]] = None,
    ) -> List[Span]:
        """Attach spans recorded elsewhere (e.g. a worker process).

        Span ids are remapped onto this collector's id space so they cannot
        collide with locally recorded spans; internal parent/child links are
        preserved, and roots (spans whose parent is unknown here) are
        re-parented under ``parent`` when given.
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        corr = current_corr_id()
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        for payload in payloads:
            restored = Span.from_dict(payload, self)
            if corr is not None and "corr_id" not in restored.attrs:
                restored.attrs["corr_id"] = corr
            id_map[restored.span_id] = next(self._ids)
            adopted.append(restored)
        for restored in adopted:
            restored.span_id = id_map[restored.span_id]
            if restored.parent_id in id_map:
                restored.parent_id = id_map[restored.parent_id]
            else:
                restored.parent_id = parent_id
        with self._lock:
            for restored in adopted:
                if len(self._spans) < self.max_spans:
                    self._spans.append(restored)
                else:
                    self.dropped += 1
            sinks = list(self._sinks)
        for sink in sinks:
            for restored in adopted:
                sink(restored)
        return adopted

    def activate(self) -> "ContextManager[TraceCollector]":
        """Shorthand for ``activated(self)``."""
        return activated(self)


# ---------------------------------------------------------------------- #
# Module-level active collector
# ---------------------------------------------------------------------- #
_ACTIVE: ContextVar[Optional[TraceCollector]] = ContextVar(
    "repro_trace_collector", default=None
)


def install(collector: TraceCollector) -> None:
    """Make ``collector`` the active collector for this context."""
    _ACTIVE.set(collector)


def uninstall() -> None:
    _ACTIVE.set(None)


def current() -> Optional[TraceCollector]:
    """The active collector, or ``None`` when tracing is off."""
    return _ACTIVE.get()


@contextmanager
def activated(collector: TraceCollector) -> Iterator[TraceCollector]:
    """Activate ``collector`` for the duration of the block, then restore."""
    token = _ACTIVE.set(collector)
    try:
        yield collector
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attrs: AttrValue) -> Union[Span, _NoopSpan]:
    """Open a span on the active collector, or a no-op when tracing is off.

    This is the function instrumented code calls; it must stay cheap when
    disabled.
    """
    collector = _ACTIVE.get()
    if collector is None or not collector.enabled:
        return NOOP_SPAN
    return Span(collector, name, attrs or None)


def traced(name: Optional[str] = None, **attrs: AttrValue) -> Callable:
    """Decorator: wrap a function call in a span named after it."""

    def decorate(func: Callable) -> Callable:
        span_name = name or f"{func.__module__.rsplit('.', 1)[-1]}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def export_stack_spans() -> Tuple[Dict[str, Any], ...]:  # pragma: no cover
    """Snapshot of the active collector's spans as plain dicts."""
    collector = _ACTIVE.get()
    if collector is None:
        return ()
    return tuple(recorded.to_dict() for recorded in collector.spans())
