"""Synthetic policy generator.

Builds a :class:`~repro.policy.tenant.NetworkPolicy` (plus a matching
:class:`~repro.fabric.fabric.Fabric`) from a :class:`WorkloadProfile`.  The
generator's goal is not to invent traffic but to reproduce the *sharing
structure* the paper measured on its production cluster (Figure 3):

* a few VRFs scope most EPGs, so a VRF is shared by a huge number of EPG
  pairs;
* EPG popularity is heavy-tailed — some application tiers talk to hundreds
  of others, many talk to a handful;
* contracts and filters are mostly local glue, shared by few pairs, with a
  small popular tail (the "http allow" style filters reused everywhere).

Those properties are produced by (i) skewed VRF sizes, (ii) Zipf-like EPG
popularity when sampling pairs and (iii) bounded contract reuse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import WorkloadError
from ..fabric.fabric import Fabric
from ..fabric.topology import LeafSpineTopology
from ..policy.builder import PolicyBuilder
from ..policy.objects import EpgPair
from ..policy.tenant import NetworkPolicy
from ..policy.validation import validate_policy
from .profiles import WorkloadProfile

__all__ = ["GeneratedWorkload", "generate_policy", "generate_workload"]

#: Ports drawn for filter entries: a few very common services plus a random tail.
_COMMON_PORTS = [80, 443, 22, 53, 3306, 5432, 8080, 8443, 6379, 9092]


@dataclass
class GeneratedWorkload:
    """A generated policy together with the fabric it is attached to."""

    profile: WorkloadProfile
    policy: NetworkPolicy
    fabric: Fabric
    builder: PolicyBuilder
    #: uid lists per object kind, for convenience in tests and experiments.
    vrf_uids: List[str] = field(default_factory=list)
    epg_uids: List[str] = field(default_factory=list)
    contract_uids: List[str] = field(default_factory=list)
    filter_uids: List[str] = field(default_factory=list)
    endpoint_uids: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, int]:
        return {**self.policy.summary(), "leaves": len(self.fabric.leaf_uids())}


def _zipf_weights(count: int, skew: float) -> List[float]:
    """Weights proportional to ``1 / rank**skew`` (uniform when skew == 0)."""
    if skew <= 0:
        return [1.0] * count
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


def _sample_range(rng: random.Random, bounds: Tuple[int, int]) -> int:
    low, high = bounds
    if low > high:
        raise WorkloadError(f"invalid range {bounds}")
    return rng.randint(low, high)


def generate_policy(
    profile: WorkloadProfile,
    rng: Optional[random.Random] = None,
) -> Tuple[PolicyBuilder, Dict[str, List[str]]]:
    """Generate the policy objects and relations for ``profile``.

    Returns the builder (so callers can keep mutating the policy, e.g. the
    use-case scenarios) and a dictionary of created uids per object kind.
    """
    rng = rng or random.Random(profile.seed)
    builder = PolicyBuilder(tenant=profile.name)

    # --- VRFs ----------------------------------------------------------- #
    vrf_uids = [builder.vrf(f"vrf-{i + 1}", scope_id=100 + i) for i in range(profile.num_vrfs)]
    vrf_weights = _zipf_weights(profile.num_vrfs, profile.vrf_size_skew)

    # --- EPGs ------------------------------------------------------------ #
    epg_uids: List[str] = []
    epg_vrf: Dict[str, str] = {}
    for i in range(profile.num_epgs):
        vrf_uid = rng.choices(vrf_uids, weights=vrf_weights, k=1)[0]
        epg_uid = builder.epg(f"epg-{i + 1}", vrf=vrf_uid)
        epg_uids.append(epg_uid)
        epg_vrf[epg_uid] = vrf_uid

    # --- Filters ---------------------------------------------------------- #
    filter_uids: List[str] = []
    for i in range(profile.num_filters):
        entries = []
        for _ in range(_sample_range(rng, profile.entries_per_filter)):
            if rng.random() < 0.7:
                port = rng.choice(_COMMON_PORTS)
            else:
                port = rng.randint(1024, 49151)
            protocol = "tcp" if rng.random() < 0.85 else "udp"
            entries.append((protocol, port))
        filter_uids.append(builder.filter(f"filter-{i + 1}", entries))

    # --- Contracts --------------------------------------------------------- #
    contract_uids: List[str] = []
    filter_weights = _zipf_weights(profile.num_filters, 1.0)
    for i in range(profile.num_contracts):
        count = min(_sample_range(rng, profile.filters_per_contract), profile.num_filters)
        chosen: List[str] = []
        while len(chosen) < count:
            candidate = rng.choices(filter_uids, weights=filter_weights, k=1)[0]
            if candidate not in chosen:
                chosen.append(candidate)
        contract_uids.append(builder.contract(f"contract-{i + 1}", chosen))

    # --- EPG pairs (provide/consume relations) ----------------------------- #
    epgs_by_vrf: Dict[str, List[str]] = {}
    for epg_uid, vrf_uid in epg_vrf.items():
        epgs_by_vrf.setdefault(vrf_uid, []).append(epg_uid)

    epg_weights = _zipf_weights(profile.num_epgs, profile.epg_popularity_skew)
    weight_of = {uid: epg_weights[i] for i, uid in enumerate(epg_uids)}

    # Contract reuse is restricted to one VRF: reusing a contract across VRFs
    # would create provide/consume relations that whitelist nothing (pairs are
    # same-VRF scoped), wasting policy objects.  Because a contract with many
    # consumers and providers implies the full bipartite product of pairs, the
    # generator tracks the *actual* pair count incrementally and stops once
    # the target is reached.
    used_contracts_by_vrf: Dict[str, List[str]] = {}
    unused_contracts = list(contract_uids)
    rng.shuffle(unused_contracts)
    contract_consumers: Dict[str, set[str]] = {uid: set() for uid in contract_uids}
    contract_providers: Dict[str, set[str]] = {uid: set() for uid in contract_uids}
    pairs_created: set[EpgPair] = set()
    attempts = 0
    max_attempts = profile.target_pairs * 30
    while len(pairs_created) < profile.target_pairs and attempts < max_attempts:
        attempts += 1
        consumer = rng.choices(epg_uids, weights=epg_weights, k=1)[0]
        vrf_uid = epg_vrf[consumer]
        vrf_members = epgs_by_vrf[vrf_uid]
        if len(vrf_members) < 2:
            continue
        member_weights = [weight_of[uid] for uid in vrf_members]
        provider = rng.choices(vrf_members, weights=member_weights, k=1)[0]
        if provider == consumer:
            continue
        pair = EpgPair(consumer, provider)
        if pair in pairs_created:
            continue
        # Pick the contract gluing this pair together (reuse stays in-VRF).
        reusable = used_contracts_by_vrf.get(vrf_uid, [])
        if reusable and (
            not unused_contracts or rng.random() < profile.contract_reuse_probability
        ):
            contract_uid = rng.choice(reusable)
        else:
            if not unused_contracts:
                contract_uid = rng.choice(reusable) if reusable else None
            else:
                contract_uid = unused_contracts.pop()
                used_contracts_by_vrf.setdefault(vrf_uid, []).append(contract_uid)
        if contract_uid is None:
            continue
        builder.consume(consumer, contract_uid)
        builder.provide(provider, contract_uid)
        # Account for every pair the new relations imply (bipartite product).
        new_consumers = contract_consumers[contract_uid] | {consumer}
        new_providers = contract_providers[contract_uid] | {provider}
        for c_uid in new_consumers:
            for p_uid in new_providers:
                if c_uid != p_uid:
                    pairs_created.add(EpgPair(c_uid, p_uid))
        contract_consumers[contract_uid] = new_consumers
        contract_providers[contract_uid] = new_providers

    if len(pairs_created) < profile.target_pairs * 0.5:
        raise WorkloadError(
            f"generator produced only {len(pairs_created)} of {profile.target_pairs} "
            f"target pairs for profile {profile.name!r}"
        )

    # --- Endpoints ----------------------------------------------------------- #
    endpoint_uids: List[str] = []
    counter = 0
    for epg_uid in epg_uids:
        for _ in range(_sample_range(rng, profile.endpoints_per_epg)):
            counter += 1
            endpoint_uids.append(
                builder.endpoint(
                    f"ep-{counter}",
                    epg_uid,
                    ip=f"10.{(counter >> 16) & 255}.{(counter >> 8) & 255}.{counter & 255}",
                )
            )

    uids = {
        "vrfs": vrf_uids,
        "epgs": epg_uids,
        "contracts": contract_uids,
        "filters": filter_uids,
        "endpoints": endpoint_uids,
    }
    return builder, uids


def _attach_endpoints(
    policy: NetworkPolicy,
    fabric: Fabric,
    profile: WorkloadProfile,
    rng: random.Random,
) -> None:
    """Attach each EPG's endpoints to a small random set of leaves.

    Endpoints of one EPG are co-located on ``switches_per_epg`` leaves, which
    is what makes a single switch carry thousands of EPG pairs in the
    production-cluster study.
    """
    leaves = fabric.leaf_uids()
    endpoints_by_epg: Dict[str, List[str]] = {}
    for endpoint in policy.endpoints():
        endpoints_by_epg.setdefault(endpoint.epg_uid, []).append(endpoint.uid)
    for epg_uid, endpoint_uids in endpoints_by_epg.items():
        spread = min(len(leaves), _sample_range(rng, profile.switches_per_epg))
        chosen_leaves = rng.sample(leaves, spread)
        for i, endpoint_uid in enumerate(endpoint_uids):
            fabric.attach_endpoint(policy, endpoint_uid, chosen_leaves[i % spread])


def generate_workload(
    profile: WorkloadProfile,
    seed: Optional[int] = None,
    tcam_capacity: Optional[int] = None,
    validate: bool = True,
) -> GeneratedWorkload:
    """Generate policy + fabric + endpoint placement for ``profile``."""
    rng = random.Random(profile.seed if seed is None else seed)
    builder, uids = generate_policy(profile, rng=rng)
    policy = builder.build()
    topology = LeafSpineTopology.build(profile.num_leaves, profile.num_spines)
    fabric = Fabric(topology=topology, tcam_capacity=tcam_capacity)
    _attach_endpoints(policy, fabric, profile, rng)
    if validate:
        validate_policy(policy)
    return GeneratedWorkload(
        profile=profile,
        policy=policy,
        fabric=fabric,
        builder=builder,
        vrf_uids=uids["vrfs"],
        epg_uids=uids["epgs"],
        contract_uids=uids["contracts"],
        filter_uids=uids["filters"],
        endpoint_uids=uids["endpoints"],
    )
