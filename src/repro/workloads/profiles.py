"""Workload profiles.

A profile captures the knobs of the synthetic policy generator: how many
switches, VRFs, EPGs, contracts and filters to create, how endpoints are
spread over EPGs and leaves, and how skewed the sharing between EPG pairs
and objects should be.  Three families of profiles are provided:

* ``production_cluster_profile`` — matches the object counts the paper
  reports for its production cluster (≈30 switches, 6 VRFs, 615 EPGs,
  386 contracts, 160 filters, hundreds of servers) and a heavy-tailed
  sharing structure that reproduces the shape of Figure 3;
* ``simulation_profile`` — a scaled-down version of the cluster used by the
  accuracy experiments (Figures 8 and 9), keeping the same sharing shape but
  small enough that hundreds of localization runs finish quickly;
* ``testbed_profile`` — the small testbed policy of §VI-A (36 EPGs,
  24 contracts, 9 filters, ≈100 EPG pairs) with its characteristic *low*
  degree of risk sharing;
* ``datacenter_profile`` — the scalability experiment's fabric (§VI-D
  scales the risk model to 500+ switches): hundreds of leaves with
  production-like sharing, sized so every leaf's rule set stays within the
  BDD engine's exact-check range.  This is the workload the sharded
  parallel verification engine is benchmarked on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "WorkloadProfile",
    "datacenter_profile",
    "production_cluster_profile",
    "profile_names",
    "resolve_profile",
    "simulation_profile",
    "small_profile",
    "testbed_profile",
    "scaled_profile",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """All parameters of one synthetic workload."""

    name: str
    num_leaves: int
    num_spines: int
    num_vrfs: int
    num_epgs: int
    num_contracts: int
    num_filters: int
    target_pairs: int
    #: Endpoints per EPG, inclusive range.
    endpoints_per_epg: Tuple[int, int] = (1, 3)
    #: Leaves each EPG's endpoints are spread over, inclusive range.
    switches_per_epg: Tuple[int, int] = (1, 2)
    #: Filter entries per filter, inclusive range.
    entries_per_filter: Tuple[int, int] = (1, 2)
    #: Filters per contract, inclusive range.
    filters_per_contract: Tuple[int, int] = (1, 3)
    #: Zipf-like skew of EPG popularity when forming pairs (0 = uniform).
    epg_popularity_skew: float = 1.0
    #: Zipf-like skew of VRF sizes (how unevenly EPGs spread over VRFs).
    vrf_size_skew: float = 1.2
    #: Probability that a new EPG pair reuses an already-used contract.
    contract_reuse_probability: float = 0.55
    #: Default RNG seed for reproducibility.
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.num_leaves <= 0 or self.num_vrfs <= 0 or self.num_epgs < 2:
            raise ValueError(f"profile {self.name!r} has degenerate sizes")
        if self.num_contracts <= 0 or self.num_filters <= 0 or self.target_pairs <= 0:
            raise ValueError(f"profile {self.name!r} has degenerate policy sizes")


def production_cluster_profile(seed: int = 2018) -> WorkloadProfile:
    """The paper's production cluster (§VI-A): full scale, used for Figure 3."""
    return WorkloadProfile(
        name="production-cluster",
        num_leaves=30,
        num_spines=4,
        num_vrfs=6,
        num_epgs=615,
        num_contracts=386,
        num_filters=160,
        target_pairs=18_000,
        endpoints_per_epg=(1, 3),
        switches_per_epg=(1, 3),
        epg_popularity_skew=1.1,
        vrf_size_skew=1.4,
        contract_reuse_probability=0.65,
        seed=seed,
    )


def simulation_profile(seed: int = 2018) -> WorkloadProfile:
    """Scaled-down cluster with the same sharing shape, for the accuracy sweeps."""
    return WorkloadProfile(
        name="simulation",
        num_leaves=10,
        num_spines=2,
        num_vrfs=4,
        num_epgs=120,
        num_contracts=90,
        num_filters=40,
        target_pairs=1_500,
        endpoints_per_epg=(1, 3),
        switches_per_epg=(1, 2),
        epg_popularity_skew=1.0,
        vrf_size_skew=1.2,
        contract_reuse_probability=0.6,
        seed=seed,
    )


def small_profile(seed: int = 2018) -> WorkloadProfile:
    """A deliberately small demo profile for the service daemon and CI smoke.

    Big enough to produce a multi-leaf fabric with shared policy objects (so
    audits and incidents are non-trivial), small enough that generate +
    deploy + monitor bootstrap + a parallel audit all finish in seconds —
    the workload ``python -m repro.service --profile small`` boots on.
    """
    return WorkloadProfile(
        name="small",
        num_leaves=4,
        num_spines=2,
        num_vrfs=2,
        num_epgs=20,
        num_contracts=12,
        num_filters=8,
        target_pairs=48,
        endpoints_per_epg=(1, 2),
        switches_per_epg=(1, 2),
        epg_popularity_skew=0.8,
        vrf_size_skew=1.0,
        contract_reuse_probability=0.5,
        seed=seed,
    )


def testbed_profile(seed: int = 2018) -> WorkloadProfile:
    """The small testbed policy of §VI-A with its low degree of risk sharing."""
    return WorkloadProfile(
        name="testbed",
        num_leaves=6,
        num_spines=2,
        num_vrfs=2,
        num_epgs=36,
        num_contracts=24,
        num_filters=9,
        target_pairs=100,
        endpoints_per_epg=(1, 2),
        switches_per_epg=(1, 2),
        epg_popularity_skew=0.6,
        vrf_size_skew=0.8,
        contract_reuse_probability=0.5,
        seed=seed,
    )


def datacenter_profile(seed: int = 2018, num_leaves: int = 512) -> WorkloadProfile:
    """A 500+-switch datacenter fabric for the parallel verification path.

    The paper's scalability experiment (§VI-D) grows the controller risk
    model to 500 switches; this profile is the matching *fabric*: hundreds
    of leaves, a policy that scales with them, and per-leaf rule sets small
    enough (~100-300 rules) that the auto engine checks every switch with
    the exact BDD comparison — the CPU-bound work the process-pool sharding
    is built to spread.
    """
    if num_leaves < 500:
        raise ValueError(f"datacenter profile needs >= 500 leaves, got {num_leaves}")
    return WorkloadProfile(
        name=f"datacenter-{num_leaves}",
        num_leaves=num_leaves,
        num_spines=16,
        num_vrfs=24,
        num_epgs=12 * num_leaves,
        num_contracts=9 * num_leaves,
        num_filters=480,
        target_pairs=12 * num_leaves,
        endpoints_per_epg=(1, 2),
        switches_per_epg=(1, 2),
        epg_popularity_skew=1.0,
        vrf_size_skew=1.2,
        contract_reuse_probability=0.6,
        seed=seed,
    )


#: CLI/service name → profile builder.  Every builder accepts ``seed``.
_PROFILE_BUILDERS = {
    "small": small_profile,
    "testbed": testbed_profile,
    "simulation": simulation_profile,
    "production": production_cluster_profile,
    "datacenter": datacenter_profile,
}


def profile_names() -> List[str]:
    """The short names :func:`resolve_profile` accepts (CLI/service surface)."""
    return sorted(_PROFILE_BUILDERS)


def resolve_profile(name: str, seed: Optional[int] = None) -> WorkloadProfile:
    """Look up a workload profile by its short CLI name.

    Raises :class:`ValueError` listing the known names, so callers (the
    daemon's argument parser, the audit CLI) can surface it directly.
    """
    builder = _PROFILE_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(profile_names())
        raise ValueError(f"unknown workload profile {name!r} (known: {known})")
    return builder() if seed is None else builder(seed=seed)


def scaled_profile(
    base: WorkloadProfile,
    num_leaves: int,
    name: str | None = None,
    pairs_per_leaf: int | None = None,
    seed: int | None = None,
) -> WorkloadProfile:
    """Scale a profile to a different fabric size (for the scalability study).

    The policy grows proportionally with the number of leaves: EPGs,
    contracts, filters and target pairs are all scaled by
    ``num_leaves / base.num_leaves`` (at least their base values), which is
    how the paper scales the controller risk model "by adding new EPG and
    switch pairs".
    """
    factor = max(1.0, num_leaves / base.num_leaves)
    target_pairs = (
        num_leaves * pairs_per_leaf
        if pairs_per_leaf is not None
        else int(base.target_pairs * factor)
    )
    return WorkloadProfile(
        name=name or f"{base.name}-x{num_leaves}",
        num_leaves=num_leaves,
        num_spines=base.num_spines,
        num_vrfs=max(base.num_vrfs, int(base.num_vrfs * factor ** 0.5)),
        num_epgs=max(base.num_epgs, int(base.num_epgs * factor)),
        num_contracts=max(base.num_contracts, int(base.num_contracts * factor)),
        num_filters=max(base.num_filters, int(base.num_filters * factor ** 0.5)),
        target_pairs=target_pairs,
        endpoints_per_epg=base.endpoints_per_epg,
        switches_per_epg=base.switches_per_epg,
        entries_per_filter=base.entries_per_filter,
        filters_per_contract=base.filters_per_contract,
        epg_popularity_skew=base.epg_popularity_skew,
        vrf_size_skew=base.vrf_size_skew,
        contract_reuse_probability=base.contract_reuse_probability,
        seed=base.seed if seed is None else seed,
    )
