"""Churn profiles: how a workload's control plane keeps changing.

A :class:`WorkloadProfile` describes a *static* snapshot — the policy shape
the generator materializes once.  A :class:`ChurnProfile` describes how that
snapshot *keeps moving*: the relative frequency of tenant rule churn
(add/remove/modify), topology churn (link flaps, switch reboots, maintenance
drains) and interleaved fault injection, plus how often the stream stops for
a differential checkpoint.  One churn profile is registered per workload
profile, tuned to its size: the small/testbed fabrics see every event family
(the soak suites run them), the larger profiles lean policy-heavy because a
reboot on a 500-leaf fabric is rare relative to rule churn.

Everything here is plain data — the event stream itself is produced by
:mod:`repro.churn.stream` from a profile and a seed, and applying it is the
job of :class:`repro.churn.driver.ChurnDriver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CHURN_EVENT_KINDS",
    "ChurnMix",
    "ChurnProfile",
    "churn_profile_for",
    "churn_profile_names",
]

#: Every churn event kind a mix can weight, in canonical draw order.  The
#: order is part of the stream contract: the generator draws kinds with
#: ``rng.choices`` over exactly this sequence, so reordering it would change
#: every recorded stream.
CHURN_EVENT_KINDS = (
    "policy-add",
    "policy-modify",
    "policy-remove",
    "link-flap",
    "switch-reboot",
    "switch-drain",
    "fault",
)


@dataclass(frozen=True)
class ChurnMix:
    """Relative weights of the churn event families (0 disables a family)."""

    policy_add: float = 4.0
    policy_modify: float = 3.0
    policy_remove: float = 2.0
    link_flap: float = 1.0
    switch_reboot: float = 0.5
    switch_drain: float = 0.5
    fault: float = 1.0

    def __post_init__(self) -> None:
        for kind, weight in zip(CHURN_EVENT_KINDS, self.weights()):
            if weight < 0:
                raise ValueError(
                    f"churn weight for {kind!r} must be >= 0, got {weight}"
                )
        if not any(self.weights()):
            raise ValueError("churn mix needs at least one positive weight")

    def weights(self) -> Tuple[float, ...]:
        """Weights aligned with :data:`CHURN_EVENT_KINDS`."""
        return (
            self.policy_add,
            self.policy_modify,
            self.policy_remove,
            self.link_flap,
            self.switch_reboot,
            self.switch_drain,
            self.fault,
        )

    def to_dict(self) -> Dict[str, float]:
        return dict(zip(CHURN_EVENT_KINDS, self.weights()))


@dataclass(frozen=True)
class ChurnProfile:
    """All parameters of one churn stream over one workload profile."""

    name: str
    #: Short name of the workload profile the stream runs against (see
    #: :func:`repro.workloads.profiles.resolve_profile`).
    workload: str
    #: Number of churn events in the stream (checkpoints ride on top).
    events: int = 200
    #: A differential checkpoint is inserted after every this many events.
    checkpoint_interval: int = 25
    seed: int = 2018
    mix: ChurnMix = field(default_factory=ChurnMix)
    #: Logical ticks a flapped link stays down (inclusive range).
    flap_down_ticks: Tuple[int, int] = (1, 3)
    #: How many subsequent events a drained switch stays out of service.
    drain_duration_events: Tuple[int, int] = (2, 6)
    #: Simultaneous object faults per fault event (inclusive range).
    faults_per_event: Tuple[int, int] = (1, 2)

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError(f"churn profile {self.name!r} needs >= 1 event")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"churn profile {self.name!r} needs checkpoint_interval >= 1"
            )
        for label, bounds in (
            ("flap_down_ticks", self.flap_down_ticks),
            ("drain_duration_events", self.drain_duration_events),
            ("faults_per_event", self.faults_per_event),
        ):
            low, high = bounds
            if low < 1 or high < low:
                raise ValueError(
                    f"churn profile {self.name!r}: invalid {label} range {bounds}"
                )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "events": self.events,
            "checkpoint_interval": self.checkpoint_interval,
            "seed": self.seed,
            "mix": self.mix.to_dict(),
            "flap_down_ticks": list(self.flap_down_ticks),
            "drain_duration_events": list(self.drain_duration_events),
            "faults_per_event": list(self.faults_per_event),
        }


#: Per-workload churn shapes.  Small fabrics exercise every family; the big
#: profiles are policy-churn-heavy (physical churn is rare per-switch at
#: scale, and a reboot there would dominate the stream's wall-clock).
_CHURN_MIXES: Dict[str, ChurnMix] = {
    "small": ChurnMix(),
    "testbed": ChurnMix(policy_add=3.0, policy_modify=3.0, policy_remove=1.5),
    "simulation": ChurnMix(policy_add=5.0, policy_modify=4.0, policy_remove=2.0),
    "production": ChurnMix(
        policy_add=8.0,
        policy_modify=6.0,
        policy_remove=3.0,
        link_flap=1.0,
        switch_reboot=0.25,
        switch_drain=0.25,
        fault=1.0,
    ),
    "datacenter": ChurnMix(
        policy_add=10.0,
        policy_modify=8.0,
        policy_remove=4.0,
        link_flap=1.0,
        switch_reboot=0.1,
        switch_drain=0.1,
        fault=0.5,
    ),
}


def churn_profile_names() -> List[str]:
    """Workload names that have a registered churn shape."""
    return sorted(_CHURN_MIXES)


def churn_profile_for(
    workload: str,
    events: Optional[int] = None,
    seed: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
) -> ChurnProfile:
    """The registered churn profile for one workload profile name.

    Raises :class:`ValueError` listing the known names (the same contract as
    :func:`~repro.workloads.profiles.resolve_profile`), so the campaign spec
    validation and the service route surface it directly.
    """
    mix = _CHURN_MIXES.get(workload)
    if mix is None:
        known = ", ".join(churn_profile_names())
        raise ValueError(f"no churn profile for workload {workload!r} (known: {known})")
    profile = ChurnProfile(name=f"churn-{workload}", workload=workload, mix=mix)
    updates: Dict = {}
    if events is not None:
        updates["events"] = events
    if seed is not None:
        updates["seed"] = seed
    if checkpoint_interval is not None:
        updates["checkpoint_interval"] = checkpoint_interval
    elif events is not None:
        # Scale the checkpoint cadence with the stream: ~8 checkpoints for
        # long soaks, every few events for short campaign cells.
        updates["checkpoint_interval"] = max(1, min(25, events // 8 or 1))
    return replace(profile, **updates) if updates else profile
