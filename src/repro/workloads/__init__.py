"""Synthetic workloads: profiles, the policy generator and scenario builders."""

from .churn_profiles import (
    CHURN_EVENT_KINDS,
    ChurnMix,
    ChurnProfile,
    churn_profile_for,
    churn_profile_names,
)
from .generator import GeneratedWorkload, generate_policy, generate_workload
from .profiles import (
    WorkloadProfile,
    datacenter_profile,
    production_cluster_profile,
    profile_names,
    resolve_profile,
    scaled_profile,
    simulation_profile,
    small_profile,
    testbed_profile,
)
from .scenarios import (
    Scenario,
    large_unresponsive_switch_scenario,
    tcam_overflow_scenario,
    three_tier_scenario,
    unresponsive_switch_scenario,
)

__all__ = [
    "CHURN_EVENT_KINDS",
    "ChurnMix",
    "ChurnProfile",
    "GeneratedWorkload",
    "Scenario",
    "WorkloadProfile",
    "churn_profile_for",
    "churn_profile_names",
    "datacenter_profile",
    "generate_policy",
    "generate_workload",
    "large_unresponsive_switch_scenario",
    "production_cluster_profile",
    "profile_names",
    "resolve_profile",
    "scaled_profile",
    "simulation_profile",
    "small_profile",
    "tcam_overflow_scenario",
    "testbed_profile",
    "three_tier_scenario",
    "unresponsive_switch_scenario",
]
