"""Scenario builders: the paper's running example and the §V-B use cases.

Each scenario returns a fully wired :class:`Scenario` (policy + fabric +
controller, already deployed) plus whatever handles the caller needs to
reproduce the use case (e.g. the uid of the overflowing switch).  The
examples and the integration tests both build on these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..controller.controller import Controller
from ..fabric.fabric import Fabric
from ..policy.builder import PolicyBuilder, three_tier_policy
from ..policy.objects import Contract, Filter, FilterEntry
from ..policy.tenant import NetworkPolicy
from ..faults.physical import make_switch_unresponsive
from .generator import generate_workload
from .profiles import WorkloadProfile, simulation_profile

__all__ = [
    "Scenario",
    "three_tier_scenario",
    "tcam_overflow_scenario",
    "unresponsive_switch_scenario",
    "large_unresponsive_switch_scenario",
]


@dataclass
class Scenario:
    """A deployed policy/fabric/controller triple plus scenario handles."""

    name: str
    policy: NetworkPolicy
    fabric: Fabric
    controller: Controller
    builder: PolicyBuilder
    uids: Dict[str, str] = field(default_factory=dict)
    #: Free-form scenario facts (e.g. which switch was made unresponsive).
    facts: Dict[str, object] = field(default_factory=dict)


def three_tier_scenario(
    tcam_capacity: Optional[int] = None,
    deploy: bool = True,
) -> Scenario:
    """The Figure 1 example: Web/App/DB on three leaves, one endpoint each."""
    builder, uids = three_tier_policy()
    uids = dict(uids)
    uids["ep_web"] = builder.endpoint("EP1", uids["web"], ip="10.0.0.1")
    uids["ep_app"] = builder.endpoint("EP2", uids["app"], ip="10.0.0.2")
    uids["ep_db"] = builder.endpoint("EP3", uids["db"], ip="10.0.0.3")
    policy = builder.build()
    fabric = Fabric(num_leaves=3, tcam_capacity=tcam_capacity)
    fabric.attach_endpoint(policy, uids["ep_web"], "leaf-1")
    fabric.attach_endpoint(policy, uids["ep_app"], "leaf-2")
    fabric.attach_endpoint(policy, uids["ep_db"], "leaf-3")
    controller = Controller(policy, fabric)
    if deploy:
        controller.deploy()
    return Scenario(
        name="three-tier",
        policy=policy,
        fabric=fabric,
        controller=controller,
        builder=builder,
        uids=uids,
    )


def tcam_overflow_scenario(
    tcam_capacity: int = 12,
    extra_filters: int = 12,
    base_port: int = 7000,
) -> Scenario:
    """§V-B use case 1: keep adding filters to Contract:App-DB until TCAM overflows.

    The initial 3-tier policy is deployed onto leaves whose TCAM holds only
    ``tcam_capacity`` entries; the scenario then mimics a dynamic policy by
    appending ``extra_filters`` new filters to the App-DB contract one after
    another and redeploying after each change.  The leaf hosting the App tier
    eventually rejects installs and raises ``TCAM_OVERFLOW`` faults.
    """
    scenario = three_tier_scenario(tcam_capacity=tcam_capacity)
    controller = scenario.controller
    builder = scenario.builder
    tenant = builder.tenant.name
    added_filters: List[str] = []
    contract_uid = scenario.uids["app_db_contract"]

    for i in range(extra_filters):
        filter_name = f"dynamic-port{base_port + i}"
        flt = Filter(
            uid=f"filter:{tenant}/{filter_name}",
            name=filter_name,
            entries=(FilterEntry(protocol="tcp", port=base_port + i),),
        )
        controller.add_object(tenant, flt, detail="add filter (dynamic policy change)")
        old_contract = builder.tenant.contracts[contract_uid]
        updated = Contract(
            uid=old_contract.uid,
            name=old_contract.name,
            filter_uids=old_contract.filter_uids + (flt.uid,),
        )
        controller.modify_object(tenant, updated, detail=f"attach {filter_name} to App-DB contract")
        controller.deploy(record_initial_changes=False)
        added_filters.append(flt.uid)

    scenario.name = "tcam-overflow"
    scenario.facts["added_filters"] = added_filters
    scenario.facts["tcam_capacity"] = tcam_capacity
    scenario.facts["overflow_switches"] = [
        uid
        for uid, switch in scenario.fabric.switches.items()
        if switch.tcam.rejected_installs > 0
    ]
    return scenario


def unresponsive_switch_scenario(extra_filters: int = 6, base_port: int = 8100) -> Scenario:
    """§V-B use case 2: a switch goes silent while 'add filter' pushes are in flight.

    The 3-tier policy is deployed normally; then the leaf hosting the App
    tier stops responding, further filters are added to the App-DB contract
    and redeployed, and the new rules never reach that leaf.
    """
    scenario = three_tier_scenario()
    controller = scenario.controller
    builder = scenario.builder
    tenant = builder.tenant.name
    victim = "leaf-2"  # hosts EP2 / the App tier
    make_switch_unresponsive(controller, victim)

    added_filters: List[str] = []
    contract_uid = scenario.uids["app_db_contract"]
    for i in range(extra_filters):
        filter_name = f"late-port{base_port + i}"
        flt = Filter(
            uid=f"filter:{tenant}/{filter_name}",
            name=filter_name,
            entries=(FilterEntry(protocol="tcp", port=base_port + i),),
        )
        controller.add_object(tenant, flt, detail="add filter while switch is down")
        old_contract = builder.tenant.contracts[contract_uid]
        updated = Contract(
            uid=old_contract.uid,
            name=old_contract.name,
            filter_uids=old_contract.filter_uids + (flt.uid,),
        )
        controller.modify_object(tenant, updated, detail=f"attach {filter_name} to App-DB contract")
        controller.deploy(record_initial_changes=False)
        added_filters.append(flt.uid)

    scenario.name = "unresponsive-switch"
    scenario.facts["unresponsive_switch"] = victim
    scenario.facts["added_filters"] = added_filters
    return scenario


def large_unresponsive_switch_scenario(
    profile: Optional[WorkloadProfile] = None,
    seed: int = 7,
) -> Scenario:
    """§V-B use case 3: a large policy pushed onto an unresponsive switch.

    A synthetic policy (the simulation profile by default) is generated, one
    heavily-loaded leaf is silenced *before* the first deployment, and the
    push happens anyway — producing a very large number of missing rules on
    that leaf, which SCOUT must collapse to a single root cause.
    """
    profile = profile or simulation_profile()
    workload = generate_workload(profile, seed=seed)
    controller = Controller(workload.policy, workload.fabric)
    # Pick the leaf hosting the most endpoints as the victim.
    per_leaf: Dict[str, int] = {}
    for endpoint in workload.policy.endpoints():
        if endpoint.switch_uid is not None:
            per_leaf[endpoint.switch_uid] = per_leaf.get(endpoint.switch_uid, 0) + 1
    victim = max(per_leaf, key=lambda uid: per_leaf[uid])
    make_switch_unresponsive(controller, victim)
    controller.deploy()
    scenario = Scenario(
        name="large-unresponsive-switch",
        policy=workload.policy,
        fabric=workload.fabric,
        controller=controller,
        builder=workload.builder,
        uids={},
        facts={"unresponsive_switch": victim, "profile": profile.name},
    )
    return scenario
