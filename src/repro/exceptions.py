"""Exception hierarchy for the SCOUT reproduction.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class PolicyError(ReproError):
    """Raised for malformed or inconsistent network-policy definitions."""


class ValidationError(PolicyError):
    """Raised when a network policy fails structural validation.

    The ``issues`` attribute carries the full list of human-readable
    validation problems so callers can report all of them at once.
    """

    def __init__(self, issues: list[str]):
        self.issues = list(issues)
        joined = "; ".join(self.issues)
        super().__init__(f"policy validation failed with {len(self.issues)} issue(s): {joined}")


class UnknownObjectError(PolicyError):
    """Raised when a policy object identifier cannot be resolved."""


class DuplicateObjectError(PolicyError):
    """Raised when two policy objects are registered under the same identifier."""


class FabricError(ReproError):
    """Raised for errors in the simulated fabric (topology, switches, TCAM)."""


class TcamError(FabricError):
    """Raised for invalid operations on a simulated TCAM table."""


class DeploymentError(ReproError):
    """Raised when the controller cannot compile or distribute a policy."""


class VerificationError(ReproError):
    """Raised by the L-T equivalence checker for malformed inputs."""


class RiskModelError(ReproError):
    """Raised for inconsistent risk-model construction or augmentation."""


class LocalizationError(ReproError):
    """Raised when a fault-localization algorithm receives invalid input."""


class FaultInjectionError(ReproError):
    """Raised when a fault scenario cannot be applied to the fabric."""


class WorkloadError(ReproError):
    """Raised when a synthetic workload/profile cannot be generated."""


class ChurnError(ReproError):
    """Raised for invalid churn streams or churn-driver misuse."""


class ChurnDivergenceError(ChurnError):
    """Raised when the churn differential oracle fails.

    The incrementally maintained verification state no longer matches a
    from-scratch full check (or the incident ledger no longer matches the
    violating switches).  This is the strongest correctness signal the
    codebase has: it means an event slipped through the blast-radius
    bookkeeping.  The ``checkpoint`` attribute carries the offending
    :class:`repro.churn.driver.CheckpointRecord`.
    """

    def __init__(self, message: str, checkpoint=None):
        super().__init__(message)
        self.checkpoint = checkpoint
