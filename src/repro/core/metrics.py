"""Evaluation metrics (§VI).

Three quantities drive the paper's evaluation:

* **precision** ``|G ∩ H| / |H|`` — fewer false positives is better;
* **recall** ``|G ∩ H| / |G|`` — fewer false negatives is better;
* **suspect-set reduction γ** — the ratio between the size of the hypothesis
  and the number of objects that the failed EPG pairs rely on (what an admin
  would otherwise have to inspect by hand).

``G`` is the ground truth (the objects whose deployment was actually
faulted) and ``H`` the hypothesis produced by a localizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Sequence, Set, Tuple

from ..risk.model import RiskModel
from .hypothesis import Hypothesis

__all__ = [
    "AccuracyResult",
    "precision",
    "recall",
    "f1_score",
    "accuracy",
    "suspect_set",
    "suspect_set_reduction",
    "bin_by_suspect_count",
]


def _as_set(objects: Iterable[Hashable]) -> Set[Hashable]:
    if isinstance(objects, Hypothesis):
        return set(objects.objects())
    return set(objects)


def precision(ground_truth: Iterable[Hashable], hypothesis: Iterable[Hashable]) -> float:
    """``|G ∩ H| / |H|``; defined as 1.0 when the hypothesis is empty and G is empty, else 0."""
    truth = _as_set(ground_truth)
    hypo = _as_set(hypothesis)
    if not hypo:
        return 1.0 if not truth else 0.0
    return len(truth & hypo) / len(hypo)


def recall(ground_truth: Iterable[Hashable], hypothesis: Iterable[Hashable]) -> float:
    """``|G ∩ H| / |G|``; defined as 1.0 when the ground truth is empty."""
    truth = _as_set(ground_truth)
    hypo = _as_set(hypothesis)
    if not truth:
        return 1.0
    return len(truth & hypo) / len(truth)


def f1_score(ground_truth: Iterable[Hashable], hypothesis: Iterable[Hashable]) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(ground_truth, hypothesis)
    r = recall(ground_truth, hypothesis)
    if p + r == 0.0:
        return 0.0
    return 2 * p * r / (p + r)


@dataclass(frozen=True)
class AccuracyResult:
    """Precision/recall bundle with the raw set sizes, for experiment tables."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int
    hypothesis_size: int
    ground_truth_size: int


def accuracy(ground_truth: Iterable[Hashable], hypothesis: Iterable[Hashable]) -> AccuracyResult:
    """Compute the full accuracy bundle for one localization run."""
    truth = _as_set(ground_truth)
    hypo = _as_set(hypothesis)
    tp = len(truth & hypo)
    return AccuracyResult(
        precision=precision(truth, hypo),
        recall=recall(truth, hypo),
        f1=f1_score(truth, hypo),
        true_positives=tp,
        false_positives=len(hypo) - tp,
        false_negatives=len(truth) - tp,
        hypothesis_size=len(hypo),
        ground_truth_size=len(truth),
    )


def suspect_set(model: RiskModel) -> Set[Hashable]:
    """All objects that failed elements rely on — the admin's raw search space."""
    return model.suspect_risks()


def suspect_set_reduction(model: RiskModel, hypothesis: Iterable[Hashable]) -> float:
    """γ — hypothesis size divided by the raw suspect-set size (§VI).

    Smaller is better; γ is 0 when there is nothing to suspect.
    """
    suspects = suspect_set(model)
    if not suspects:
        return 0.0
    return len(_as_set(hypothesis)) / len(suspects)


def bin_by_suspect_count(
    samples: Sequence[Tuple[int, float]],
    bins: Sequence[Tuple[int, int]],
) -> Dict[str, Dict[str, float]]:
    """Aggregate (suspect-count, γ) samples into the bins of Figure 7.

    ``bins`` is a sequence of inclusive ``(low, high)`` ranges, e.g.
    ``[(1, 10), (10, 50), ...]`` — matching the x-axis buckets the paper uses.
    Returns, per bin label ``"low-high"``, the mean γ and the sample count.
    """
    results: Dict[str, Dict[str, float]] = {}
    for low, high in bins:
        label = f"{low}-{high}"
        values = [gamma for count, gamma in samples if low <= count <= high]
        results[label] = {
            "mean_gamma": sum(values) / len(values) if values else 0.0,
            "max_gamma": max(values) if values else 0.0,
            "samples": float(len(values)),
        }
    return results
