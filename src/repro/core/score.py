"""SCORE: the baseline risk-modeling localization algorithm (§IV-B).

SCORE (Kompella et al., "Fault localization via risk modeling") greedily
builds a hypothesis by repeatedly picking the shared risk with the highest
*coverage ratio* among the risks whose *hit ratio* clears a fixed threshold.
The paper reimplements it as the baseline and shows its weakness in the
policy-deployment setting: partially-failed objects (hit ratio < threshold)
are treated as noise and never selected, which costs recall.

The implementation follows the classic greedy loop:

1. compute hit ratio ``|O_i|/|G_i|`` for every risk with at least one failed
   edge;
2. keep the risks with hit ratio ≥ threshold (the *candidate set*);
3. repeatedly pick from the candidate set the risk explaining the largest
   number of still-unexplained observations (ties broken by hit ratio, then
   deterministically by key) until no candidate explains anything new;
4. everything still unexplained is reported as such.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from ..exceptions import LocalizationError
from ..risk.model import RiskModel
from .hypothesis import Hypothesis, HypothesisEntry, SelectionReason

__all__ = ["ScoreLocalizer"]


class ScoreLocalizer:
    """Greedy min-set-cover localization with a hit-ratio threshold."""

    def __init__(self, hit_threshold: float = 1.0) -> None:
        if not 0.0 < hit_threshold <= 1.0:
            raise LocalizationError(
                f"hit threshold must be in (0, 1], got {hit_threshold}"
            )
        self.hit_threshold = hit_threshold

    @property
    def name(self) -> str:
        return f"SCORE-{self.hit_threshold:g}"

    # ------------------------------------------------------------------ #
    # Localization
    # ------------------------------------------------------------------ #
    def localize(
        self,
        model: RiskModel,
        failure_signature: Optional[Set[Hashable]] = None,
    ) -> Hypothesis:
        """Run SCORE over an augmented risk model and return its hypothesis."""
        signature = (
            set(failure_signature)
            if failure_signature is not None
            else model.failure_signature()
        )
        hypothesis = Hypothesis(algorithm=self.name)
        if not signature:
            return hypothesis

        # Candidate risks: hit ratio (computed on the full model) >= threshold.
        candidate_risks: dict[Hashable, Set[Hashable]] = {}
        for observation in signature:
            for risk in model.failed_risks_for_element(observation):
                if risk in candidate_risks:
                    continue
                if model.hit_ratio(risk) >= self.hit_threshold:
                    candidate_risks[risk] = model.failed_elements_for_risk(risk) & signature

        unexplained = set(signature)
        iteration = 0
        while unexplained and candidate_risks:
            iteration += 1
            best_risk = None
            best_gain: Set[Hashable] = set()
            best_key = None
            for risk, observations in candidate_risks.items():
                gain = observations & unexplained
                sort_key = (len(gain), model.hit_ratio(risk), _stable_key(risk))
                if best_key is None or sort_key > best_key:
                    best_key = sort_key
                    best_risk = risk
                    best_gain = gain
            if best_risk is None or not best_gain:
                break
            hypothesis.add(
                HypothesisEntry(
                    risk=best_risk,
                    reason=SelectionReason.HIT_AND_COVERAGE,
                    hit_ratio=model.hit_ratio(best_risk),
                    coverage_ratio=len(best_gain) / len(signature),
                    iteration=iteration,
                    explained=set(best_gain),
                )
            )
            unexplained -= best_gain
            candidate_risks.pop(best_risk, None)

        hypothesis.unexplained = unexplained
        hypothesis.iterations = iteration
        return hypothesis


def _stable_key(risk: Hashable) -> str:
    """Deterministic tie-break key for arbitrary hashable risk identifiers."""
    return repr(risk)
