"""SCOUT: the paper's fault-localization algorithm (§IV-C, Algorithms 1-2).

SCOUT runs in two stages:

**Stage 1 — greedy hit/coverage selection.**  While unexplained observations
remain, compute the hit and coverage ratios of every shared risk with a
failed edge to an unexplained observation; among the risks with hit ratio
exactly 1 (all of their dependents failed), pick the ones with the highest
coverage of the still-unexplained observations (Algorithm 2), add them to the
hypothesis, and prune every element that depends on them (Algorithm 1,
lines 4-19).  The loop ends when no risk has hit ratio 1 anymore.

**Stage 2 — change-log lookup.**  Observations left unexplained are caused by
*partially* failed objects (hit ratio < 1), which is the case SCORE treats as
noise.  For each residual observation SCOUT inspects the controller change
log and selects the failed objects "to which some actions are recently
applied" (lines 20-25).

The change-log stage is pluggable: any object implementing
:class:`ChangeLogOracle`'s interface can be supplied, the default adapter
wrapping :class:`repro.controller.changelog.ChangeLog` with a recency window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Protocol, Set

from ..controller.changelog import ChangeLog
from ..obs import span
from ..risk.model import RiskModel
from .hypothesis import Hypothesis, HypothesisEntry, SelectionReason

__all__ = ["ChangeLogOracle", "RecentChangeOracle", "ScoutLocalizer"]


class ChangeLogOracle(Protocol):
    """The query SCOUT's second stage needs from the controller change log."""

    def recently_changed(self, candidates: Iterable[Hashable]) -> Set[Hashable]:
        """Return the subset of ``candidates`` with recent management actions."""
        ...


def _candidate_uid(candidate: Hashable) -> Optional[str]:
    """The change-log key for a candidate risk.

    Risk keys are usually the object uids themselves; risks that are richer
    objects are looked up through their ``uid`` attribute.  Candidates with
    no string uid can never have change records and are excluded explicitly
    (rather than silently, as a type filter would).
    """
    if isinstance(candidate, str):
        return candidate
    uid = getattr(candidate, "uid", None)
    return uid if isinstance(uid, str) else None


@dataclass
class RecentChangeOracle:
    """Default change-log oracle: a sliding recency window over a ChangeLog.

    ``window`` is measured in logical-clock ticks backwards from ``now``
    (defaulting to the newest record in the log).  With ``fallback_latest``
    enabled, a candidate set with no record inside the window falls back to
    the candidates with the most recent record overall — useful when an
    operator runs localization long after the offending change.  Candidates
    whose latest records tie on the timestamp are *all* returned, so the
    result never depends on iteration order.
    """

    change_log: ChangeLog
    window: int = 100
    now: Optional[int] = None
    fallback_latest: bool = True

    def recently_changed(self, candidates: Iterable[Hashable]) -> Set[Hashable]:
        # Distinct candidates may share a change-log uid: keep them all, so
        # the result is a pure function of the candidate *set*.
        by_uid: Dict[str, Set[Hashable]] = {}
        for candidate in candidates:
            uid = _candidate_uid(candidate)
            if uid is not None:
                by_uid.setdefault(uid, set()).add(candidate)
        if not by_uid:
            return set()
        reference = self.now if self.now is not None else self.change_log.last_timestamp()
        recent = self.change_log.recently_changed_objects(reference, self.window)
        selected = {
            candidate
            for uid, group in by_uid.items()
            if uid in recent
            for candidate in group
        }
        if selected or not self.fallback_latest:
            return selected
        # Fallback: every candidate sharing the newest change timestamp.
        best_time = -1
        best: Set[Hashable] = set()
        for uid in sorted(by_uid):
            record = self.change_log.latest_for_object(uid)
            if record is None:
                continue
            if record.timestamp > best_time:
                best_time = record.timestamp
                best = set(by_uid[uid])
            elif record.timestamp == best_time:
                best.update(by_uid[uid])
        return best


class ScoutLocalizer:
    """The SCOUT greedy localization algorithm."""

    def __init__(self, change_oracle: Optional[ChangeLogOracle] = None) -> None:
        self.change_oracle = change_oracle

    @property
    def name(self) -> str:
        return "SCOUT"

    # ------------------------------------------------------------------ #
    # Algorithm 2: pickCandidates
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pick_candidates(
        model: RiskModel,
        risks: Set[Hashable],
        unexplained: Set[Hashable],
    ) -> tuple[Set[Hashable], Dict[Hashable, Set[Hashable]]]:
        """Risks with hit ratio 1 and maximal coverage of ``unexplained``.

        Returns the chosen risk set and, for each chosen risk, the
        observations it explains.
        """
        hit_set: dict[Hashable, Set[Hashable]] = {}
        for risk in risks:
            dependents = model.elements_for_risk(risk)
            if not dependents:
                continue
            failed = model.failed_elements_for_risk(risk)
            if len(failed) == len(dependents):  # hit ratio == 1
                gain = failed & unexplained
                if gain:
                    hit_set[risk] = gain
        if not hit_set:
            return set(), {}
        max_gain = max(len(gain) for gain in hit_set.values())
        chosen = {risk for risk, gain in hit_set.items() if len(gain) == max_gain}
        return chosen, {risk: hit_set[risk] for risk in chosen}

    # ------------------------------------------------------------------ #
    # Algorithm 1: the main loop
    # ------------------------------------------------------------------ #
    def localize(
        self,
        model: RiskModel,
        failure_signature: Optional[Set[Hashable]] = None,
        change_oracle: Optional[ChangeLogOracle] = None,
    ) -> Hypothesis:
        """Run SCOUT over an augmented risk model and return its hypothesis."""
        oracle = change_oracle or self.change_oracle
        signature = (
            set(failure_signature)
            if failure_signature is not None
            else model.failure_signature()
        )
        hypothesis = Hypothesis(algorithm=self.name)
        if not signature:
            return hypothesis

        working = model.copy()
        unexplained = set(signature)
        iteration = 0

        with span("scout.stage1", observations=len(signature)) as stage1:
            while unexplained:
                iteration += 1
                # K: risks with failed edges to currently-unexplained observations.
                candidate_risks: Set[Hashable] = set()
                for observation in unexplained:
                    candidate_risks |= working.failed_risks_for_element(observation)
                faulty_set, gains = self._pick_candidates(working, candidate_risks, unexplained)
                if not faulty_set:
                    break
                # Prune every element (failed or not) depending on a chosen risk.
                affected: Set[Hashable] = set()
                for risk in faulty_set:
                    affected |= working.elements_for_risk(risk)
                for risk in sorted(faulty_set, key=repr):
                    hypothesis.add(
                        HypothesisEntry(
                            risk=risk,
                            reason=SelectionReason.HIT_AND_COVERAGE,
                            hit_ratio=1.0,
                            coverage_ratio=(len(gains[risk]) / len(unexplained)) if unexplained else 0.0,
                            iteration=iteration,
                            explained=set(gains[risk]),
                        )
                    )
                working.prune_elements(affected)
                unexplained -= affected
            stage1.count("iterations", iteration)

        # Stage 2: explain the residual observations via the change log.
        if unexplained and oracle is not None:
            with span("scout.stage2", residual=len(unexplained)):
                for observation in sorted(unexplained, key=repr):
                    failed_objects = model.failed_risks_for_element(observation)
                    recent = oracle.recently_changed(failed_objects)
                    for risk in sorted(recent, key=repr):
                        if risk in hypothesis:
                            entry = hypothesis.entry_for(risk)
                            if entry is not None:
                                entry.explained.add(observation)
                            hypothesis.explained.add(observation)
                            continue
                        hypothesis.add(
                            HypothesisEntry(
                                risk=risk,
                                reason=SelectionReason.CHANGE_LOG,
                                hit_ratio=model.hit_ratio(risk),
                                coverage_ratio=model.coverage_ratio(risk, signature),
                                iteration=iteration,
                                explained={observation},
                            )
                        )

        hypothesis.unexplained = signature - hypothesis.explained
        hypothesis.iterations = iteration
        return hypothesis
