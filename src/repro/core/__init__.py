"""The paper's primary contribution: fault localization of network policies.

This package contains the SCOUT algorithm, the SCORE baseline, the accuracy
and suspect-set-reduction metrics, the event correlation engine and the
end-to-end :class:`ScoutSystem` pipeline.
"""

from .correlation import (
    CorrelationReport,
    EventCorrelationEngine,
    FaultSignature,
    RootCauseFinding,
    default_signatures,
)
from .hypothesis import Hypothesis, HypothesisEntry, SelectionReason
from .metrics import (
    AccuracyResult,
    accuracy,
    bin_by_suspect_count,
    f1_score,
    precision,
    recall,
    suspect_set,
    suspect_set_reduction,
)
from .score import ScoreLocalizer
from .scout import ChangeLogOracle, RecentChangeOracle, ScoutLocalizer
from .system import ScoutReport, ScoutSystem

__all__ = [
    "AccuracyResult",
    "ChangeLogOracle",
    "CorrelationReport",
    "EventCorrelationEngine",
    "FaultSignature",
    "Hypothesis",
    "HypothesisEntry",
    "RecentChangeOracle",
    "RootCauseFinding",
    "ScoreLocalizer",
    "ScoutLocalizer",
    "ScoutReport",
    "ScoutSystem",
    "SelectionReason",
    "accuracy",
    "bin_by_suspect_count",
    "default_signatures",
    "f1_score",
    "precision",
    "recall",
    "suspect_set",
    "suspect_set_reduction",
]
