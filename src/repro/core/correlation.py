"""Event correlation engine (§V-A).

The fault localization engine tells the admin *which policy objects* are
faulty; the event correlation engine goes one step further and infers the
*physical-level root cause* that made them faulty.  It works in the three
steps the paper describes:

1. for every object in the hypothesis, look up its change-log records to
   find when management actions were applied to it;
2. use those timestamps to narrow the device fault logs down to faults that
   were raised before the change and were still active when it was pushed;
3. match the narrowed fault records against a signature catalogue composed
   by admins (disconnected switch, TCAM overflow, ...); objects whose faults
   match no signature are tagged ``unknown``.

The signature catalogue is deliberately simple and extensible — "signatures
can be flexibly added to the engine, and the system's ability would be
naturally enhanced with more signatures".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from ..controller.changelog import ChangeLog, ChangeRecord
from ..fabric.faultlog import FaultCode, FaultRecord
from .hypothesis import Hypothesis

__all__ = [
    "FaultSignature",
    "RootCauseFinding",
    "CorrelationReport",
    "EventCorrelationEngine",
    "default_signatures",
]

#: A matcher receives one fault record and decides whether it fits the signature.
SignatureMatcher = Callable[[FaultRecord], bool]


@dataclass(frozen=True)
class FaultSignature:
    """A named, admin-composed description of a known physical fault."""

    name: str
    description: str
    matcher: SignatureMatcher

    def matches(self, record: FaultRecord) -> bool:
        return self.matcher(record)


def default_signatures() -> List[FaultSignature]:
    """The signature catalogue for the fault classes the simulation can raise."""

    def _code_matcher(code: FaultCode) -> SignatureMatcher:
        return lambda record: record.code is code

    return [
        FaultSignature(
            name="tcam-overflow",
            description="Switch TCAM ran out of space while installing rules",
            matcher=_code_matcher(FaultCode.TCAM_OVERFLOW),
        ),
        FaultSignature(
            name="unresponsive-switch",
            description="Switch stopped responding to the controller during a push",
            matcher=_code_matcher(FaultCode.SWITCH_UNREACHABLE),
        ),
        FaultSignature(
            name="agent-crash",
            description="Switch agent crashed in the middle of applying updates",
            matcher=_code_matcher(FaultCode.AGENT_CRASH),
        ),
        FaultSignature(
            name="control-channel-disruption",
            description="Instructions were lost between the controller and the switch agent",
            matcher=_code_matcher(FaultCode.CHANNEL_DISRUPTION),
        ),
        FaultSignature(
            name="tcam-corruption",
            description="TCAM hardware corruption rewrote installed rules",
            matcher=_code_matcher(FaultCode.TCAM_CORRUPTION),
        ),
        FaultSignature(
            name="rule-eviction",
            description="Local eviction removed installed rules behind the controller's back",
            matcher=_code_matcher(FaultCode.RULE_EVICTION),
        ),
    ]


@dataclass
class RootCauseFinding:
    """The physical-level diagnosis for one faulty policy object."""

    object_uid: Hashable
    root_cause: str
    signature: Optional[FaultSignature] = None
    matched_faults: List[FaultRecord] = field(default_factory=list)
    change_records: List[ChangeRecord] = field(default_factory=list)

    @property
    def is_known(self) -> bool:
        return self.signature is not None

    def describe(self) -> str:
        devices = sorted({fault.device_uid for fault in self.matched_faults})
        suffix = f" on {', '.join(devices)}" if devices else ""
        return f"{self.object_uid}: {self.root_cause}{suffix}"


@dataclass
class CorrelationReport:
    """All findings of one correlation run."""

    findings: List[RootCauseFinding] = field(default_factory=list)

    def known(self) -> List[RootCauseFinding]:
        return [finding for finding in self.findings if finding.is_known]

    def unknown(self) -> List[RootCauseFinding]:
        return [finding for finding in self.findings if not finding.is_known]

    def root_causes(self) -> Dict[str, List[Hashable]]:
        """Map root-cause label → objects attributed to it."""
        causes: Dict[str, List[Hashable]] = {}
        for finding in self.findings:
            causes.setdefault(finding.root_cause, []).append(finding.object_uid)
        return causes

    def describe(self) -> str:
        lines = [f"Root cause findings ({len(self.findings)} object(s)):"]
        for finding in self.findings:
            lines.append(f"  - {finding.describe()}")
        return "\n".join(lines)


class EventCorrelationEngine:
    """Correlates faulty objects with change logs and device fault logs."""

    def __init__(
        self,
        signatures: Optional[Sequence[FaultSignature]] = None,
        lookback_window: int = 1_000,
    ) -> None:
        self.signatures = list(signatures) if signatures is not None else default_signatures()
        self.lookback_window = lookback_window

    def add_signature(self, signature: FaultSignature) -> None:
        """Extend the catalogue (admins add signatures as they learn new faults)."""
        self.signatures.append(signature)

    # ------------------------------------------------------------------ #
    # Correlation
    # ------------------------------------------------------------------ #
    def correlate(
        self,
        hypothesis: Hypothesis | Iterable[Hashable],
        change_log: ChangeLog,
        fault_records: Sequence[FaultRecord],
        relevant_devices: Optional[Dict[Hashable, Sequence[str]]] = None,
    ) -> CorrelationReport:
        """Produce a root-cause finding for every object in the hypothesis.

        ``relevant_devices`` optionally restricts, per object, which devices'
        fault records may explain it (the SCOUT system passes the switches on
        which the object's rules went missing); without it every device's
        faults are considered.
        """
        objects = (
            sorted(hypothesis.objects(), key=repr)
            if isinstance(hypothesis, Hypothesis)
            else sorted(set(hypothesis), key=repr)
        )
        report = CorrelationReport()
        for object_uid in objects:
            changes = change_log.for_object(object_uid) if isinstance(object_uid, str) else []
            relevant_faults = self._relevant_faults(
                object_uid, changes, fault_records, relevant_devices
            )
            finding = self._diagnose(object_uid, changes, relevant_faults)
            report.findings.append(finding)
        return report

    def _relevant_faults(
        self,
        object_uid: Hashable,
        changes: Sequence[ChangeRecord],
        fault_records: Sequence[FaultRecord],
        relevant_devices: Optional[Dict[Hashable, Sequence[str]]],
    ) -> List[FaultRecord]:
        """Step 2: faults active when the object's changes were applied."""
        allowed_devices = None
        if relevant_devices is not None:
            allowed = relevant_devices.get(object_uid)
            if allowed is not None:
                allowed_devices = set(allowed)

        candidates = [
            record
            for record in fault_records
            if allowed_devices is None or record.device_uid in allowed_devices
        ]
        if not changes:
            # No recorded change: fall back to any active fault on the
            # relevant devices (the object may have broken without a recent
            # management action, e.g. spontaneous TCAM corruption).
            return [record for record in candidates if record.cleared_at is None]
        relevant: list[FaultRecord] = []
        for change in changes:
            for record in candidates:
                if record.is_active_at(change.timestamp) or (
                    0 <= change.timestamp - record.raised_at <= self.lookback_window
                ):
                    if record not in relevant:
                        relevant.append(record)
        return relevant

    def _diagnose(
        self,
        object_uid: Hashable,
        changes: Sequence[ChangeRecord],
        faults: Sequence[FaultRecord],
    ) -> RootCauseFinding:
        """Step 3: match the narrowed fault records against the signatures."""
        for signature in self.signatures:
            matched = [record for record in faults if signature.matches(record)]
            if matched:
                return RootCauseFinding(
                    object_uid=object_uid,
                    root_cause=signature.name,
                    signature=signature,
                    matched_faults=list(matched),
                    change_records=list(changes),
                )
        return RootCauseFinding(
            object_uid=object_uid,
            root_cause="unknown",
            signature=None,
            matched_faults=[],
            change_records=list(changes),
        )
