"""The end-to-end SCOUT system (§V, Figure 6).

``ScoutSystem`` wires the pieces together exactly as the paper's architecture
diagram shows:

1. the **L-T equivalence checker** compares the logical rules compiled from
   the controller's policy against the TCAM rules collected from the fabric
   and emits missing rules;
2. the **fault localization engine** builds the switch and/or controller
   risk models, augments them with the missing rules and runs the SCOUT
   algorithm to produce a hypothesis of faulty policy objects;
3. the **event correlation engine** combines the hypothesis with the
   controller change logs and the device fault logs to output the most
   likely physical-level root causes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Literal, Optional, Sequence, Set

from ..controller.controller import Controller
from ..obs import TraceCollector, activated, span
from ..parallel.engine import plan_for_report
from ..parallel.executor import SMALL_FABRIC_SWITCHES
from ..parallel.pool import WarmWorkerPool
from ..parallel.shards import ShardPlan, clamp_workers
from ..policy.graph import PolicyIndex
from ..risk.augment import (
    augment_controller_model,
    augment_controller_model_sharded,
    augment_switch_model,
)
from ..risk.controller_model import build_controller_risk_model
from ..risk.model import RiskModel
from ..risk.switch_model import build_switch_risk_model
from ..rules import TcamRule
from ..verify.checker import EquivalenceChecker, EquivalenceReport
from .correlation import CorrelationReport, EventCorrelationEngine
from .hypothesis import Hypothesis
from .metrics import suspect_set_reduction
from .scout import RecentChangeOracle, ScoutLocalizer

__all__ = ["ScoutReport", "ScoutSystem"]

Scope = Literal["controller", "switch"]


@dataclass
class ScoutReport:
    """Everything one end-to-end SCOUT run produced."""

    scope: Scope
    equivalence: EquivalenceReport
    hypothesis: Hypothesis
    per_switch: Dict[str, Hypothesis] = field(default_factory=dict)
    risk_models: Dict[str, RiskModel] = field(default_factory=dict)
    correlation: Optional[CorrelationReport] = None

    @property
    def consistent(self) -> bool:
        """True when the deployed state matches the policy everywhere."""
        return self.equivalence.equivalent

    def faulty_objects(self) -> Set[Hashable]:
        return self.hypothesis.objects()

    def suspect_reduction(self) -> float:
        """Mean suspect-set-reduction γ across the augmented risk models."""
        gammas = [
            suspect_set_reduction(model, self.hypothesis.objects())
            for model in self.risk_models.values()
            if model.failure_signature()
        ]
        if not gammas:
            return 0.0
        return sum(gammas) / len(gammas)

    def to_dict(self) -> Dict:
        """JSON-ready form of everything an operator-facing surface consumes.

        Risk models stay behind (they are graph-sized internals rebuilt from
        live state on demand) and correlation findings are flattened to their
        operator-facing facts; everything else — the equivalence report with
        full rule provenance, the hypothesis with its selection order — is
        carried verbatim so ``repro.service.serializers`` can round-trip it.
        """
        correlation = None
        if self.correlation is not None:
            correlation = {
                "findings": [
                    {
                        "object_uid": str(finding.object_uid),
                        "root_cause": finding.root_cause,
                        "known": finding.is_known,
                        "devices": sorted(
                            {fault.device_uid for fault in finding.matched_faults}
                        ),
                    }
                    for finding in self.correlation.findings
                ]
            }
        return {
            "scope": self.scope,
            "consistent": self.consistent,
            "equivalence": self.equivalence.to_dict(),
            "hypothesis": self.hypothesis.to_dict(),
            "per_switch": {
                uid: self.per_switch[uid].to_dict() for uid in sorted(self.per_switch)
            },
            "correlation": correlation,
        }

    def describe(self) -> str:
        lines = [
            f"SCOUT report ({self.scope} scope)",
            f"  missing rules: {self.equivalence.total_missing()} "
            f"across {len(self.equivalence.switches_with_violations())} switch(es)",
            self.hypothesis.describe(),
        ]
        if self.correlation is not None and self.correlation.findings:
            lines.append(self.correlation.describe())
        return "\n".join(lines)


class ScoutSystem:
    """End-to-end pipeline: equivalence check → localization → correlation."""

    def __init__(
        self,
        controller: Controller,
        checker: Optional[EquivalenceChecker] = None,
        localizer: Optional[ScoutLocalizer] = None,
        correlation_engine: Optional[EventCorrelationEngine] = None,
        change_window: int = 100,
        include_switch_risks: bool = True,
    ) -> None:
        self.controller = controller
        self.checker = checker or EquivalenceChecker()
        self.change_window = change_window
        self.include_switch_risks = include_switch_risks
        self.localizer = localizer or ScoutLocalizer(
            change_oracle=RecentChangeOracle(
                change_log=controller.change_log, window=change_window
            )
        )
        self.correlation_engine = correlation_engine or EventCorrelationEngine()
        #: Lazily created persistent worker pool for parallel sweeps.
        self._pool: Optional[WarmWorkerPool] = None
        #: Derived checkers for per-call ``engine=`` overrides, cached so a
        #: repeated override (e.g. every ``ap`` audit) reuses compiled state.
        self._engine_checkers: Dict[str, EquivalenceChecker] = {}

    def _checker_for(self, engine: Optional[str]) -> EquivalenceChecker:
        """The system checker, or a derived one pinned to ``engine``.

        Derived checkers share the base checker's rule space, limits and
        atom table (atomic predicates refine monotonically, so sharing is
        always sound), differing only in engine selection.
        """
        if engine is None or engine == self.checker.engine:
            return self.checker
        derived = self._engine_checkers.get(engine)
        if derived is None:
            derived = EquivalenceChecker(
                rule_space=self.checker.rule_space,
                engine=engine,
                bdd_limit=self.checker.bdd_limit,
                ap_limit=self.checker.ap_limit,
                atoms=self.checker.atoms,
            )
            self._engine_checkers[engine] = derived
        return derived

    # ------------------------------------------------------------------ #
    # Worker-pool lifecycle
    # ------------------------------------------------------------------ #
    def worker_pool(self, max_workers: Optional[int] = None) -> WarmWorkerPool:
        """The system's persistent warm-worker pool, created on first use.

        The first call sizes the pool; later calls reuse it as-is (the
        shard plan still honours each call's ``max_workers``, so a smaller
        round simply leaves workers idle).  Workers keep their memoized
        compiled state across rounds until :meth:`close`.
        """
        if self._pool is None or self._pool.closed:
            self._pool = WarmWorkerPool(max_workers=max_workers)
        return self._pool

    def close(self) -> None:
        """Release the worker pool — and its warm caches — if one exists."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ScoutSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Step 1: L-T equivalence check
    # ------------------------------------------------------------------ #
    def check(
        self,
        index: Optional[PolicyIndex] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        executor=None,
        trace: Optional[TraceCollector] = None,
        engine: Optional[str] = None,
    ) -> EquivalenceReport:
        """Compare desired (L) and deployed (T) rules across the fabric.

        ``engine`` overrides the system checker's engine selection for this
        sweep only (any :data:`~repro.verify.checker.ENGINES` value); the
        derived checker shares the base checker's atom table and limits.

        With ``parallel=True`` (or an explicit ``executor``) the per-switch
        checks run through the sharded engine — the system's persistent
        :class:`~repro.parallel.pool.WarmWorkerPool` of ``max_workers`` on
        large fabrics (workers and their memo caches survive across calls
        until :meth:`close`), the deterministic in-process fallback on
        small ones.  The report is identical either way; only the
        wall-clock differs.

        ``trace`` activates the given :class:`~repro.obs.TraceCollector`
        for the duration of the sweep; the collector is also attached to
        the returned report as ``report.trace``.
        """
        checker = self._checker_for(engine)
        scope = activated(trace) if trace is not None else contextlib.nullcontext()
        with scope:
            with span("check.compile_logical"):
                logical = self.controller.logical_rules(index=index)
            with span("check.collect_deployed"):
                deployed = self.controller.collect_deployed_rules()
            if parallel or executor is not None:
                switches = [
                    (uid, logical.get(uid, ()), deployed.get(uid, ()))
                    for uid in sorted(set(logical) | set(deployed))
                ]
                if executor is None and len(switches) >= SMALL_FABRIC_SWITCHES:
                    # Large fabrics go through the persistent pool so the
                    # workers' memo caches survive into the next round;
                    # small ones fall through to the inline fallback inside
                    # resolve_executor (no processes to keep warm).
                    executor = self.worker_pool(max_workers)
                report = checker.check_many(
                    switches, executor=executor, max_workers=max_workers
                )
            else:
                with span("check.network", switches=len(set(logical) | set(deployed))):
                    report = checker.check_network(logical, deployed)
        if trace is not None:
            report.trace = trace
        return report

    # ------------------------------------------------------------------ #
    # Step 2: fault localization
    # ------------------------------------------------------------------ #
    def localize(
        self,
        scope: Scope = "controller",
        report: Optional[EquivalenceReport] = None,
        correlate: bool = True,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        shard_plan: Optional[ShardPlan] = None,
        trace: Optional[TraceCollector] = None,
        engine: Optional[str] = None,
    ) -> ScoutReport:
        """Run the full pipeline and return a :class:`ScoutReport`.

        ``engine`` overrides the checker engine for this run's equivalence
        sweep (see :meth:`check`); localization and correlation consume the
        resulting report unchanged, so the hypothesis is engine-invariant.

        ``parallel=True`` shards the equivalence sweep across
        ``max_workers`` processes and applies the risk-model augmentation
        shard batch by shard batch (along ``shard_plan``, or a plan derived
        from the report): SCOUT itself consumes the merged observations
        unchanged, so the hypothesis is identical to a serial run.

        ``trace`` activates the collector for the whole pipeline; it is
        attached to the returned report as ``report.trace``.
        """
        scope_cm = activated(trace) if trace is not None else contextlib.nullcontext()
        with scope_cm:
            with span("scout.build_index"):
                index = self.controller.build_index()
            equivalence = report or self.check(
                index=index, parallel=parallel, max_workers=max_workers, engine=engine
            )
            if shard_plan is None and parallel:
                shard_plan = plan_for_report(
                    equivalence,
                    clamp_workers(max_workers, total_items=len(equivalence.results)),
                )
            missing_by_switch = equivalence.missing_rules()

            risk_models: Dict[str, RiskModel] = {}
            per_switch: Dict[str, Hypothesis] = {}

            with span("scout.risk_model", scope=scope) as risk_span:
                if scope == "switch":
                    merged = Hypothesis(algorithm=self.localizer.name)
                    for switch_uid, missing in sorted(missing_by_switch.items()):
                        model = build_switch_risk_model(index, switch_uid)
                        augment_switch_model(model, missing)
                        risk_models[switch_uid] = model
                        with span("scout.localize", switch=switch_uid):
                            hypothesis = self.localizer.localize(model)
                        per_switch[switch_uid] = hypothesis
                        merged = merged.merge(hypothesis)
                    hypothesis = merged
                else:
                    model = build_controller_risk_model(
                        self.controller.policy,
                        index=index,
                        include_switch_risks=self.include_switch_risks,
                    )
                    if shard_plan is not None:
                        augment_controller_model_sharded(
                            model,
                            missing_by_switch,
                            shard_plan,
                            include_switch_risks=self.include_switch_risks,
                        )
                    else:
                        augment_controller_model(
                            model,
                            missing_by_switch,
                            include_switch_risks=self.include_switch_risks,
                        )
                    risk_models["controller"] = model
                    risk_span.count("observations", len(missing_by_switch))
                    with span("scout.localize", scope=scope):
                        hypothesis = self.localizer.localize(model)

            correlation = None
            if correlate and hypothesis.objects():
                with span("scout.correlate"):
                    correlation = self._correlate(hypothesis, missing_by_switch)

        scout_report = ScoutReport(
            scope=scope,
            equivalence=equivalence,
            hypothesis=hypothesis,
            per_switch=per_switch,
            risk_models=risk_models,
            correlation=correlation,
        )
        if trace is not None:
            scout_report.trace = trace
        return scout_report

    # ------------------------------------------------------------------ #
    # Step 3: event correlation
    # ------------------------------------------------------------------ #
    def _correlate(
        self,
        hypothesis: Hypothesis,
        missing_by_switch: Dict[str, Sequence[TcamRule]],
    ) -> CorrelationReport:
        """Map each faulty object to the devices its missing rules touched."""
        relevant_devices: Dict[Hashable, List[str]] = {}
        for switch_uid, missing in missing_by_switch.items():
            for rule in missing:
                for uid in rule.objects():
                    relevant_devices.setdefault(uid, [])
                    if switch_uid not in relevant_devices[uid]:
                        relevant_devices[uid].append(switch_uid)
        # A switch selected as a faulty risk is its own relevant device.
        for risk in hypothesis.objects():
            if isinstance(risk, str) and risk in self.controller.fabric:
                relevant_devices.setdefault(risk, [risk])

        fault_records = self.controller.all_fault_records()
        return self.correlation_engine.correlate(
            hypothesis,
            self.controller.change_log,
            fault_records,
            relevant_devices=relevant_devices,
        )
