"""Hypothesis: the output of a fault-localization run.

A hypothesis is "a minimum set of most-likely faulty policy objects that
explains most of the observed failures" (§I).  Besides the bare object set,
the class records *why* each object was selected (which stage and with what
utility values), which observations it explains, and which observations the
algorithm could not explain — all of which the evaluation and the event
correlation engine consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

__all__ = ["SelectionReason", "HypothesisEntry", "Hypothesis"]


class SelectionReason(str, enum.Enum):
    """How an object ended up in the hypothesis."""

    #: Selected by the greedy hit-ratio/coverage stage (SCOUT stage 1, SCORE).
    HIT_AND_COVERAGE = "hit-and-coverage"
    #: Selected by SCOUT's change-log stage for residual observations.
    CHANGE_LOG = "change-log"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class HypothesisEntry:
    """One object in the hypothesis, with the evidence that selected it."""

    risk: Hashable
    reason: SelectionReason
    hit_ratio: float = 0.0
    coverage_ratio: float = 0.0
    iteration: int = 0
    explained: Set[Hashable] = field(default_factory=set)

    def describe(self) -> str:
        return (
            f"{self.risk} ({self.reason.value}, hit={self.hit_ratio:.2f}, "
            f"cov={self.coverage_ratio:.2f}, explains {len(self.explained)})"
        )

    def to_dict(self) -> dict:
        """JSON-ready form; risk keys and observations are stringified."""
        return {
            "risk": str(self.risk),
            "reason": self.reason.value,
            "hit_ratio": self.hit_ratio,
            "coverage_ratio": self.coverage_ratio,
            "iteration": self.iteration,
            "explained": sorted(str(obs) for obs in self.explained),
        }


@dataclass
class Hypothesis:
    """The full localization output."""

    entries: List[HypothesisEntry] = field(default_factory=list)
    explained: Set[Hashable] = field(default_factory=set)
    unexplained: Set[Hashable] = field(default_factory=set)
    iterations: int = 0
    algorithm: str = ""

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add(self, entry: HypothesisEntry) -> None:
        if entry.risk not in self.objects():
            self.entries.append(entry)
        self.explained.update(entry.explained)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def objects(self) -> Set[Hashable]:
        """The set of risk keys (policy-object uids / switch uids) reported faulty."""
        return {entry.risk for entry in self.entries}

    def objects_by_reason(self, reason: SelectionReason) -> Set[Hashable]:
        return {entry.risk for entry in self.entries if entry.reason is reason}

    def entry_for(self, risk: Hashable) -> Optional[HypothesisEntry]:
        for entry in self.entries:
            if entry.risk == risk:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.objects())

    def __contains__(self, risk: Hashable) -> bool:
        return risk in self.objects()

    def merge(self, other: "Hypothesis") -> "Hypothesis":
        """Union of two hypotheses (used to combine per-switch results)."""
        merged = Hypothesis(algorithm=self.algorithm or other.algorithm)
        for entry in list(self.entries) + list(other.entries):
            if entry.risk not in merged.objects():
                merged.entries.append(entry)
        merged.explained = set(self.explained) | set(other.explained)
        merged.unexplained = (set(self.unexplained) | set(other.unexplained)) - merged.explained
        merged.iterations = max(self.iterations, other.iterations)
        return merged

    def to_dict(self) -> dict:
        """JSON-ready form; entry order (selection order) is preserved.

        Risk keys and observations are stringified for the wire: object and
        switch uids (the production risk keys) round-trip exactly, while the
        synthetic tuple observations some unit-test models use come back as
        their string form.
        """
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "entries": [entry.to_dict() for entry in self.entries],
            "explained": sorted(str(obs) for obs in self.explained),
            "unexplained": sorted(str(obs) for obs in self.unexplained),
        }

    def describe(self) -> str:
        lines = [f"Hypothesis ({self.algorithm}): {len(self)} object(s)"]
        for entry in self.entries:
            lines.append(f"  - {entry.describe()}")
        if self.unexplained:
            lines.append(f"  ({len(self.unexplained)} observation(s) left unexplained)")
        return "\n".join(lines)
