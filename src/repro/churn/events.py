"""Typed churn events: the vocabulary of a churn stream.

A churn stream is a sequence of frozen event records, each carrying only
*seeds and parameters* — never concrete object uids.  Concrete targets (which
EPG pair a new tenant rule wires, which leaf flaps, which objects fault) are
resolved by the :class:`~repro.churn.driver.ChurnDriver` at apply time, by
drawing from ``random.Random(event seed)`` over sorted candidate lists.  The
split keeps generation state-free: the stream is a pure function of the
:class:`~repro.workloads.churn_profiles.ChurnProfile`, and applying the same
stream to the same workload visits the same targets, because the fabric state
at every step is itself a pure function of the stream prefix.

Streams serialize to JSON Lines with sorted keys, so the byte-identity
property the campaign traces established extends to churn: same profile +
seed ⇒ the same ``to_jsonl()`` bytes, forever.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Type

__all__ = [
    "ChurnEvent",
    "PolicyAdd",
    "PolicyModify",
    "PolicyRemove",
    "LinkFlap",
    "SwitchReboot",
    "SwitchDrain",
    "FaultBurst",
    "Checkpoint",
    "event_from_dict",
    "events_from_jsonl",
    "events_to_jsonl",
]


@dataclass(frozen=True)
class ChurnEvent:
    """Base class: every event knows its position in the stream."""

    seq: int

    #: Stable wire identifier; keys the ``event_from_dict`` dispatch and the
    #: per-kind counters in the churn report.
    kind = "churn"

    def to_dict(self) -> Dict:
        payload = {"kind": self.kind}
        payload.update(asdict(self))
        return payload

    def describe(self) -> str:
        return f"#{self.seq} {self.kind}"


@dataclass(frozen=True)
class PolicyAdd(ChurnEvent):
    """Tenant onboarding of one new rule: filter + contract wiring an EPG pair.

    ``rule_id`` names the minted objects (``churn-<rule_id>``); ``draw_seed``
    seeds the pair selection and the filter entries.
    """

    rule_id: int
    draw_seed: int

    kind = "policy-add"


@dataclass(frozen=True)
class PolicyModify(ChurnEvent):
    """Rolling rule update: replace a churn-created filter's entries in place."""

    draw_seed: int

    kind = "policy-modify"


@dataclass(frozen=True)
class PolicyRemove(ChurnEvent):
    """Tenant offboarding of one churn-created rule: unwire, then delete."""

    draw_seed: int

    kind = "policy-remove"


@dataclass(frozen=True)
class LinkFlap(ChurnEvent):
    """A leaf's control link flaps: down for ``down_ticks``, then resynced."""

    draw_seed: int
    down_ticks: int

    kind = "link-flap"


@dataclass(frozen=True)
class SwitchReboot(ChurnEvent):
    """A leaf reboots: TCAM and agent view wiped, controller re-pushes."""

    draw_seed: int

    kind = "switch-reboot"


@dataclass(frozen=True)
class SwitchDrain(ChurnEvent):
    """Maintenance drain: the leaf ignores pushes for ``duration_events``."""

    draw_seed: int
    duration_events: int

    kind = "switch-drain"


@dataclass(frozen=True)
class FaultBurst(ChurnEvent):
    """Interleaved fault injection through the existing :class:`FaultInjector`."""

    draw_seed: int
    count: int = 1

    kind = "fault"


@dataclass(frozen=True)
class Checkpoint(ChurnEvent):
    """Run the differential oracle: incremental state vs. from-scratch check."""

    kind = "checkpoint"


_EVENT_TYPES: Dict[str, Type[ChurnEvent]] = {
    cls.kind: cls
    for cls in (
        PolicyAdd,
        PolicyModify,
        PolicyRemove,
        LinkFlap,
        SwitchReboot,
        SwitchDrain,
        FaultBurst,
        Checkpoint,
    )
}


def event_from_dict(data: Dict) -> ChurnEvent:
    """Rebuild one event from its ``to_dict`` payload (loud on bad input)."""
    if not isinstance(data, dict):
        raise ValueError(f"churn event must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        known = ", ".join(sorted(_EVENT_TYPES))
        raise ValueError(f"unknown churn event kind {kind!r} (known: {known})")
    fields = {key: value for key, value in data.items() if key != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValueError(f"bad {kind!r} churn event: {exc}") from None


def events_to_jsonl(events: Iterable[ChurnEvent]) -> str:
    """Serialize a stream as JSON Lines (deterministic bytes, sorted keys)."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


def events_from_jsonl(text: str) -> List[ChurnEvent]:
    """Parse a stream back; every error names the offending line."""
    events: List[ChurnEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {number}: invalid JSON ({exc.msg})") from None
        try:
            events.append(event_from_dict(payload))
        except ValueError as exc:
            raise ValueError(f"line {number}: {exc}") from None
    return events
