"""Deterministic churn streams + the differential soak-test oracle.

The paper injects faults into a *static* snapshot; this package is the
subsystem that keeps the snapshot moving.  A seeded, virtual-clock event
stream (tenant onboarding/offboarding, rolling rule updates, link flaps,
switch reboots, maintenance drains, interleaved fault injection) is applied
to a live controller/fabric pair while the online
:class:`~repro.online.monitor.NetworkMonitor` consumes the resulting bus
events — and at every checkpoint the incrementally maintained verification
state is required to be fingerprint-identical to a from-scratch full check.

* :mod:`~repro.churn.events` — the typed event vocabulary with byte-stable
  JSONL round-trips;
* :mod:`~repro.churn.stream` — profile → deterministic event sequence;
* :mod:`~repro.churn.driver` — :class:`ChurnDriver`: apply events through
  the real control plane, run the differential oracle, report.

Churn shapes per workload profile live in
:mod:`repro.workloads.churn_profiles`; the campaign engine sweeps churn via
its ``churn:N`` fault class and the operator service exposes ``POST /churn``.
"""

from ..workloads.churn_profiles import (
    CHURN_EVENT_KINDS,
    ChurnMix,
    ChurnProfile,
    churn_profile_for,
    churn_profile_names,
)
from .driver import CheckpointRecord, ChurnDriver, ChurnReport, ChurnRule
from .events import (
    Checkpoint,
    ChurnEvent,
    FaultBurst,
    LinkFlap,
    PolicyAdd,
    PolicyModify,
    PolicyRemove,
    SwitchDrain,
    SwitchReboot,
    event_from_dict,
    events_from_jsonl,
    events_to_jsonl,
)
from .stream import generate_churn_stream

__all__ = [
    "CHURN_EVENT_KINDS",
    "Checkpoint",
    "CheckpointRecord",
    "ChurnDriver",
    "ChurnEvent",
    "ChurnMix",
    "ChurnProfile",
    "ChurnReport",
    "ChurnRule",
    "FaultBurst",
    "LinkFlap",
    "PolicyAdd",
    "PolicyModify",
    "PolicyRemove",
    "SwitchDrain",
    "SwitchReboot",
    "churn_profile_for",
    "churn_profile_names",
    "event_from_dict",
    "events_from_jsonl",
    "events_to_jsonl",
    "generate_churn_stream",
]
