"""Seeded churn-stream generation.

``generate_churn_stream`` expands a :class:`ChurnProfile` into the concrete
event sequence: one seeded RNG drives every draw (event kind, per-event
target seeds, flap/drain durations, fault burst sizes), so the stream is a
pure function of the profile.  Checkpoints are interleaved every
``checkpoint_interval`` events and always terminate the stream, giving every
run at least one differential-oracle pass over its final state.
"""

from __future__ import annotations

import random
from typing import List

from ..workloads.churn_profiles import CHURN_EVENT_KINDS, ChurnProfile
from .events import (
    Checkpoint,
    ChurnEvent,
    FaultBurst,
    LinkFlap,
    PolicyAdd,
    PolicyModify,
    PolicyRemove,
    SwitchDrain,
    SwitchReboot,
)

__all__ = ["generate_churn_stream"]

#: Seeds handed to per-event target draws are 32-bit, which keeps the JSONL
#: compact and is far beyond what the sorted-candidate draws need.
_SEED_BITS = 32


def _draw_seed(rng: random.Random) -> int:
    return rng.getrandbits(_SEED_BITS)


def generate_churn_stream(profile: ChurnProfile) -> List[ChurnEvent]:
    """Expand ``profile`` into its deterministic churn event sequence.

    ``seq`` numbers count every emitted record (checkpoints included), so a
    stream slice ``events[:k]`` is always a valid prefix for replay.
    """
    rng = random.Random(profile.seed)
    weights = profile.mix.weights()
    events: List[ChurnEvent] = []
    seq = 0
    rule_id = 0
    since_checkpoint = 0

    for _ in range(profile.events):
        kind = rng.choices(CHURN_EVENT_KINDS, weights=weights, k=1)[0]
        seq += 1
        if kind == "policy-add":
            rule_id += 1
            events.append(
                PolicyAdd(seq=seq, rule_id=rule_id, draw_seed=_draw_seed(rng))
            )
        elif kind == "policy-modify":
            events.append(PolicyModify(seq=seq, draw_seed=_draw_seed(rng)))
        elif kind == "policy-remove":
            events.append(PolicyRemove(seq=seq, draw_seed=_draw_seed(rng)))
        elif kind == "link-flap":
            events.append(
                LinkFlap(
                    seq=seq,
                    draw_seed=_draw_seed(rng),
                    down_ticks=rng.randint(*profile.flap_down_ticks),
                )
            )
        elif kind == "switch-reboot":
            events.append(SwitchReboot(seq=seq, draw_seed=_draw_seed(rng)))
        elif kind == "switch-drain":
            events.append(
                SwitchDrain(
                    seq=seq,
                    draw_seed=_draw_seed(rng),
                    duration_events=rng.randint(*profile.drain_duration_events),
                )
            )
        else:
            events.append(
                FaultBurst(
                    seq=seq,
                    draw_seed=_draw_seed(rng),
                    count=rng.randint(*profile.faults_per_event),
                )
            )
        since_checkpoint += 1
        if since_checkpoint >= profile.checkpoint_interval:
            seq += 1
            events.append(Checkpoint(seq=seq))
            since_checkpoint = 0

    if not events or not isinstance(events[-1], Checkpoint):
        events.append(Checkpoint(seq=seq + 1))
    return events
