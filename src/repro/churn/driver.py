"""The churn driver: apply a churn stream to a live fabric, oracle included.

:class:`ChurnDriver` is the piece that turns the seeded event stream into
actual control-plane traffic.  It owns one deployed controller/fabric pair
with a :class:`~repro.online.monitor.NetworkMonitor` attached, so every
management action it performs flows through the *same* path production
changes would: the controller change log and the fabric hooks publish typed
events onto the bus, the monitor debounces them, and the incremental checker
patches its pair-granular state — the driver never touches the incremental
engine directly.

Policy churn is pushed *incrementally*: a new tenant rule delivers only the
five objects involved (VRF, filter, contract, both EPGs) to the switches
hosting either EPG, a removal delivers the rewired EPGs plus delete
instructions, and only topology churn (flap recovery, reboot, drain
restore) re-pushes a switch's full batch.  That keeps a 1k-event soak on
the simulation profile in CI territory and mirrors how a real controller
reconciles.

At every :class:`~repro.churn.events.Checkpoint` the driver runs the
**differential oracle**:

* the monitor's incrementally maintained report and a from-scratch
  ``ScoutSystem.check()`` must be fingerprint-identical under
  :meth:`~repro.verify.checker.EquivalenceReport.canonical` (engine labels
  and rule-list order are normalized away; verdicts, counts and rule sets
  with full provenance are not);
* the set of switches with open incidents must equal the set of switches
  the full check finds violating — no incident lost, none leaked.

With ``strict=True`` (the default) a divergence raises
:class:`~repro.exceptions.ChurnDivergenceError` on the spot; the soak
suites and the campaign ``churn`` cells both run strict.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..controller.compiler import build_instruction_batch_for_switch
from ..controller.controller import Controller
from ..core.system import ScoutSystem
from ..exceptions import ChurnDivergenceError, ChurnError
from ..fabric.faultlog import FaultCode
from ..fabric.switch import AgentState
from ..faults.base import FaultKind
from ..faults.injector import FaultInjector
from ..faults.physical import make_switch_unresponsive, restore_switch
from ..obs import correlated, current_corr_id, dump_flightrecord, span
from ..online.monitor import NetworkMonitor
from ..policy.objects import Contract, Epg, Filter, FilterEntry
from ..protocol import DeliveryStatus, Instruction, Operation
from ..verify.checker import EquivalenceChecker, EquivalenceReport
from ..workloads.churn_profiles import ChurnProfile, churn_profile_for
from ..workloads.generator import generate_workload
from ..workloads.profiles import resolve_profile
from .events import (
    Checkpoint,
    ChurnEvent,
    FaultBurst,
    LinkFlap,
    PolicyAdd,
    PolicyModify,
    PolicyRemove,
    SwitchDrain,
    SwitchReboot,
)
from .stream import generate_churn_stream

__all__ = ["CheckpointRecord", "ChurnReport", "ChurnRule", "ChurnDriver"]

#: Ports drawn for churn-minted filter entries (mirrors the generator's mix).
_COMMON_PORTS = [80, 443, 22, 53, 3306, 5432, 8080, 8443, 6379, 9092]


@dataclass(frozen=True)
class ChurnRule:
    """One churn-created tenant rule: the handles a later remove/modify needs."""

    rule_id: int
    contract_uid: str
    filter_uid: str
    consumer_uid: str
    provider_uid: str
    vrf_uid: str
    switches: Tuple[str, ...]


@dataclass
class CheckpointRecord:
    """One differential-oracle pass."""

    seq: int
    incremental_fingerprint: str
    full_fingerprint: str
    violating_switches: List[str] = field(default_factory=list)
    incident_switches: List[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.incremental_fingerprint != self.full_fingerprint

    @property
    def incidents_consistent(self) -> bool:
        return self.violating_switches == self.incident_switches

    @property
    def ok(self) -> bool:
        return not self.diverged and self.incidents_consistent

    def to_dict(self) -> Dict:
        return {
            "event": "checkpoint",
            "seq": self.seq,
            "fingerprint": self.full_fingerprint,
            "diverged": self.diverged,
            "violating_switches": list(self.violating_switches),
            "incident_switches": list(self.incident_switches),
        }


@dataclass
class ChurnReport:
    """Everything one churn run produced.

    ``identity()`` is the deterministic subset (no wall-clock): the campaign
    trace recorder and the property tests compare it field by field.
    """

    profile: ChurnProfile
    records: List[Dict] = field(default_factory=list)
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    skipped: int = 0
    final_fingerprint: str = ""
    ground_truth: List[str] = field(default_factory=list)
    incidents_opened: int = 0
    incidents_resolved: int = 0
    monitor_stats: Dict[str, int] = field(default_factory=dict)
    duration_seconds: float = 0.0

    @property
    def events_applied(self) -> int:
        return sum(self.counts.values())

    @property
    def divergence_count(self) -> int:
        return sum(1 for checkpoint in self.checkpoints if not checkpoint.ok)

    def identity(self) -> Dict:
        return {
            "profile": self.profile.to_dict(),
            "records": list(self.records),
            "counts": dict(self.counts),
            "skipped": self.skipped,
            "final_fingerprint": self.final_fingerprint,
            "ground_truth": list(self.ground_truth),
            "divergence_count": self.divergence_count,
        }

    def to_dict(self) -> Dict:
        return {
            **self.identity(),
            "events_applied": self.events_applied,
            "checkpoints": [checkpoint.to_dict() for checkpoint in self.checkpoints],
            "incidents_opened": self.incidents_opened,
            "incidents_resolved": self.incidents_resolved,
            "monitor_stats": dict(self.monitor_stats),
            "duration_seconds": self.duration_seconds,
        }

    def describe(self) -> str:
        ok = "ok" if self.divergence_count == 0 else "DIVERGED"
        return (
            f"churn {self.profile.name}: {self.events_applied} event(s) applied "
            f"({self.skipped} skipped), {len(self.checkpoints)} checkpoint(s) {ok}, "
            f"{self.incidents_opened} incident(s) opened / "
            f"{self.incidents_resolved} resolved"
        )


class ChurnDriver:
    """Apply churn events to one deployed controller while a monitor watches."""

    def __init__(
        self,
        controller: Controller,
        profile: ChurnProfile,
        monitor: Optional[NetworkMonitor] = None,
        strict: bool = True,
        change_window: int = 100,
        bdd_limit: int = 512,
        fault_kinds: Tuple[str, ...] = ("full", "partial"),
        max_workers: Optional[int] = None,
        partitions: int = 1,
    ) -> None:
        self.controller = controller
        self.profile = profile
        self.clock = controller.clock
        self.strict = strict
        #: When set, checkpoint full checks run through the system's
        #: persistent warm-worker pool — churn rounds are exactly where
        #: worker memoization pays, since most switches are unchanged
        #: between checkpoints.  ``None`` keeps the serial oracle.
        self.max_workers = max_workers
        # A churn run re-checks violating switches thousands of times (every
        # event that touches a faulted switch digests dirty), so heavyweight
        # leaves get the atomic-predicate engine instead of a fresh ROBDD per
        # pass (its table persists on each long-lived checker, so repeat
        # checks patch atoms instead of rebuilding them): ``bdd_limit`` is
        # lowered from the batch default and shared by every checker that
        # judges this run — the monitor's, the oracle's from-scratch sweep,
        # and the campaign cell's final check — so engine selection can never
        # be the thing that differs.  Small switches keep BDDs.
        self.bdd_limit = bdd_limit
        self.monitor = monitor or NetworkMonitor(
            controller,
            checker=EquivalenceChecker(bdd_limit=bdd_limit),
            debounce_ticks=1,
            partitions=partitions,
        )
        if not self.monitor.running:
            self.monitor.start()
        #: Fresh-check side of the differential oracle (its own compile path).
        self.system = ScoutSystem(
            controller,
            checker=EquivalenceChecker(bdd_limit=bdd_limit),
            change_window=change_window,
        )
        self.injector = FaultInjector(controller)
        #: Full/partial draw for FaultBurst events (campaign cells pass the
        #: spec's ``fault_kinds`` knob through; names validated eagerly).
        self.fault_kinds = tuple(FaultKind(name) for name in fault_kinds)
        self._rules: Dict[int, ChurnRule] = {}
        #: Non-checkpoint events applied so far.  Drain lifetimes count these
        #: — never stream seq numbers, which checkpoints also consume, so the
        #: observation-only checkpoint cadence cannot shorten a drain.
        self._events_seen = 0
        #: switch uid -> last _events_seen value the drain covers.
        self._drained: Dict[str, int] = {}
        self._epg_switches = self._attachment_map()
        self._last_checkpoint: Optional[CheckpointRecord] = None
        self._last_full_report: Optional[EquivalenceReport] = None

    def close(self) -> None:
        """Release both sides' worker pools (oracle system and monitor)."""
        self.system.close()
        self.monitor.release_workers()

    def __enter__(self) -> "ChurnDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_workload(
        cls,
        workload: str,
        events: Optional[int] = None,
        seed: Optional[int] = None,
        checkpoint_interval: Optional[int] = None,
        strict: bool = True,
        change_window: int = 100,
        fault_kinds: Tuple[str, ...] = ("full", "partial"),
        max_workers: Optional[int] = None,
        partitions: int = 1,
    ) -> "ChurnDriver":
        """Generate + deploy ``workload`` and wrap it in a churn driver.

        ``seed`` seeds both the workload generation and the churn stream, so
        one integer reproduces the whole run — the contract the campaign's
        ``churn`` cells and ``POST /churn`` rely on.
        """
        churn = churn_profile_for(
            workload, events=events, seed=seed, checkpoint_interval=checkpoint_interval
        )
        generated = generate_workload(resolve_profile(workload, seed=seed))
        controller = Controller(generated.policy, generated.fabric)
        controller.deploy()
        # Age the initial-deployment change records out of SCOUT's recency
        # window (the campaign runner does the same before injecting): stage
        # 2 should weigh churn-era management actions, not the big bang.
        controller.clock.tick(change_window + 1)
        return cls(
            controller,
            churn,
            strict=strict,
            change_window=change_window,
            fault_kinds=fault_kinds,
            max_workers=max_workers,
            partitions=partitions,
        )

    def _attachment_map(self) -> Dict[str, Tuple[str, ...]]:
        """EPG uid -> leaves hosting at least one of its endpoints (sorted)."""
        per_epg: Dict[str, Set[str]] = {}
        for endpoint in self.controller.policy.endpoints():
            if endpoint.switch_uid is not None:
                per_epg.setdefault(endpoint.epg_uid, set()).add(endpoint.switch_uid)
        return {uid: tuple(sorted(switches)) for uid, switches in per_epg.items()}

    # ------------------------------------------------------------------ #
    # Push plumbing (mirrors Controller.deploy's fault bookkeeping)
    # ------------------------------------------------------------------ #
    def _deliver(
        self,
        switch_uid: str,
        instructions: Sequence[Instruction],
        attachments: Sequence = (),
    ) -> None:
        report = self.controller.channel.deliver(
            switch_uid, list(instructions), list(attachments)
        )
        if report.status is DeliveryStatus.UNREACHABLE:
            self.controller.fault_log.raise_fault(
                self.clock.peek(),
                switch_uid,
                FaultCode.SWITCH_UNREACHABLE,
                detail="churn push failed: switch did not acknowledge instructions",
            )
        elif report.status is DeliveryStatus.PARTIAL:
            self.controller.fault_log.raise_fault(
                self.clock.peek(),
                switch_uid,
                FaultCode.CHANNEL_DISRUPTION,
                detail=f"{report.dropped} churn instruction(s) were not applied",
            )

    def _push_objects(
        self, objs: Sequence[Tuple[Operation, object]], switches: Sequence[str]
    ) -> None:
        """Deliver a small object batch to the named switches only."""
        issued_at = self.clock.peek()
        instructions = [
            Instruction(operation=operation, obj=obj, sequence=seq, issued_at=issued_at)
            for seq, (operation, obj) in enumerate(objs)
        ]
        for switch_uid in sorted(set(switches)):
            self._deliver(switch_uid, instructions)

    def _resync(self, switch_uid: str) -> None:
        """Re-push one switch's full batch (post-flap/reboot/drain recovery)."""
        instructions, attachments = build_instruction_batch_for_switch(
            self.controller.policy,
            switch_uid,
            index=self.monitor.delta.index,
            operation=Operation.ADD,
            issued_at=self.clock.peek(),
        )
        self._deliver(switch_uid, instructions, attachments)

    # ------------------------------------------------------------------ #
    # Target draws (sorted candidates + per-event RNG = deterministic)
    # ------------------------------------------------------------------ #
    def _healthy_leaves(self) -> List[str]:
        """Leaves eligible for topology churn (drained switches excluded)."""
        return [
            uid
            for uid in self.controller.fabric.leaf_uids()
            if uid not in self._drained
        ]

    def _eligible_vrfs(self) -> Dict[str, List[str]]:
        """VRF uid -> sorted EPGs with attached endpoints (>= 2 per VRF)."""
        policy = self.controller.policy
        by_vrf: Dict[str, List[str]] = {}
        for epg_uid in sorted(self._epg_switches):
            if epg_uid not in policy:
                continue
            by_vrf.setdefault(policy.get(epg_uid).vrf_uid, []).append(epg_uid)
        return {vrf: epgs for vrf, epgs in by_vrf.items() if len(epgs) >= 2}

    @staticmethod
    def _draw_entries(rng: random.Random) -> Tuple[FilterEntry, ...]:
        entries = []
        for _ in range(rng.randint(1, 2)):
            if rng.random() < 0.7:
                port = rng.choice(_COMMON_PORTS)
            else:
                port = rng.randint(1024, 49151)
            protocol = "tcp" if rng.random() < 0.85 else "udp"
            entries.append(FilterEntry(protocol=protocol, port=port))
        return tuple(entries)

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: ChurnEvent) -> Dict:
        """Apply one event; returns its deterministic trace record.

        Each event kind gets its own span name (``churn.policy-add``,
        ``churn.link-flap``, …) — the kind set is small and fixed, so the
        attribution table stays readable.
        """
        if not isinstance(event, Checkpoint):
            self._events_seen += 1
        # A deterministic per-event corr id (ambient ids still win, so an
        # HTTP-triggered run keeps its request trail): incidents opened by a
        # checkpoint's forced poll inherit it, and two runs of the same
        # stream — or a snapshot-restored continuation — journal the same
        # bytes.
        corr_id = current_corr_id() or f"churn-s{event.seq:06d}"
        with correlated(corr_id=corr_id), span(f"churn.{event.kind}", seq=event.seq):
            self._expire_drains()
            if isinstance(event, PolicyAdd):
                return self._apply_add(event)
            if isinstance(event, PolicyModify):
                return self._apply_modify(event)
            if isinstance(event, PolicyRemove):
                return self._apply_remove(event)
            if isinstance(event, LinkFlap):
                return self._apply_flap(event)
            if isinstance(event, SwitchReboot):
                return self._apply_reboot(event)
            if isinstance(event, SwitchDrain):
                return self._apply_drain(event)
            if isinstance(event, FaultBurst):
                return self._apply_faults(event)
            if isinstance(event, Checkpoint):
                return self.checkpoint(event.seq).to_dict()
        raise ChurnError(f"unknown churn event type {type(event).__name__}")

    def _expire_drains(self) -> None:
        for switch_uid in sorted(self._drained):
            if self._events_seen > self._drained[switch_uid]:
                del self._drained[switch_uid]
                restore_switch(self.controller, switch_uid)
                self._resync(switch_uid)

    def _skip(self, event: ChurnEvent, reason: str) -> Dict:
        return {"event": event.kind, "seq": event.seq, "skipped": reason}

    def _apply_add(self, event: PolicyAdd) -> Dict:
        rng = random.Random(event.draw_seed)
        by_vrf = self._eligible_vrfs()
        if not by_vrf:
            return self._skip(event, "no VRF with two attached EPGs")
        vrf_uid = rng.choice(sorted(by_vrf))
        consumer_uid, provider_uid = rng.sample(by_vrf[vrf_uid], 2)
        policy = self.controller.policy
        # Same-VRF EPGs share a tenant (VRFs are tenant-owned), so the pair's
        # tenant is unambiguous — multi-tenant policies are routed correctly.
        tenant = policy.tenant_of(consumer_uid).name
        name = f"churn-{event.rule_id}"
        flt = Filter(
            uid=f"filter:{tenant}/{name}",
            name=name,
            entries=self._draw_entries(rng),
        )
        contract = Contract(
            uid=f"contract:{tenant}/{name}", name=name, filter_uids=(flt.uid,)
        )
        self.controller.add_object(tenant, flt, detail="churn onboarding")
        self.controller.add_object(tenant, contract, detail="churn onboarding")
        consumer = self._rewire_epg(consumer_uid, consumes_add={contract.uid})
        provider = self._rewire_epg(provider_uid, provides_add={contract.uid})
        switches = tuple(
            sorted(
                set(self._epg_switches.get(consumer_uid, ()))
                | set(self._epg_switches.get(provider_uid, ()))
            )
        )
        vrf = policy.get(vrf_uid)
        self._push_objects(
            [
                (Operation.ADD, vrf),
                (Operation.ADD, flt),
                (Operation.ADD, contract),
                (Operation.ADD, consumer),
                (Operation.ADD, provider),
            ],
            switches,
        )
        self._rules[event.rule_id] = ChurnRule(
            rule_id=event.rule_id,
            contract_uid=contract.uid,
            filter_uid=flt.uid,
            consumer_uid=consumer_uid,
            provider_uid=provider_uid,
            vrf_uid=vrf_uid,
            switches=switches,
        )
        return {
            "event": event.kind,
            "seq": event.seq,
            "contract": contract.uid,
            "consumer": consumer_uid,
            "provider": provider_uid,
            "switches": list(switches),
        }

    def _apply_modify(self, event: PolicyModify) -> Dict:
        rng = random.Random(event.draw_seed)
        if not self._rules:
            return self._skip(event, "no churn rule to modify")
        rule = self._rules[rng.choice(sorted(self._rules))]
        flt = Filter(
            uid=rule.filter_uid,
            name=self.controller.policy.get(rule.filter_uid).name,
            entries=self._draw_entries(rng),
        )
        # A filter modify is structure-preserving: the monitor's incremental
        # checker patches its index in place (no rebuild) — the fast path
        # this event family exists to keep hot.
        tenant = self.controller.policy.tenant_of(flt.uid).name
        self.controller.modify_object(tenant, flt, detail="churn rule update")
        self._push_objects([(Operation.ADD, flt)], rule.switches)
        return {
            "event": event.kind,
            "seq": event.seq,
            "filter": flt.uid,
            "entries": [f"{entry.protocol}/{entry.port}" for entry in flt.entries],
            "switches": list(rule.switches),
        }

    def _apply_remove(self, event: PolicyRemove) -> Dict:
        rng = random.Random(event.draw_seed)
        if not self._rules:
            return self._skip(event, "no churn rule to remove")
        rule_id = rng.choice(sorted(self._rules))
        rule = self._rules.pop(rule_id)
        policy = self.controller.policy
        consumer = self._rewire_epg(
            rule.consumer_uid, consumes_drop={rule.contract_uid}
        )
        provider = self._rewire_epg(
            rule.provider_uid, provides_drop={rule.contract_uid}
        )
        contract = policy.get(rule.contract_uid)
        flt = policy.get(rule.filter_uid)
        tenant = policy.tenant_of(rule.contract_uid).name
        self.controller.delete_object(tenant, contract, detail="churn offboarding")
        self.controller.delete_object(tenant, flt, detail="churn offboarding")
        self._push_objects(
            [
                (Operation.ADD, consumer),
                (Operation.ADD, provider),
                (Operation.DELETE, contract),
                (Operation.DELETE, flt),
            ],
            rule.switches,
        )
        return {
            "event": event.kind,
            "seq": event.seq,
            "contract": rule.contract_uid,
            "switches": list(rule.switches),
        }

    def _rewire_epg(
        self,
        epg_uid: str,
        provides_add: Set[str] = frozenset(),
        consumes_add: Set[str] = frozenset(),
        provides_drop: Set[str] = frozenset(),
        consumes_drop: Set[str] = frozenset(),
    ) -> Epg:
        old = self.controller.policy.get(epg_uid)
        new = Epg(
            uid=old.uid,
            name=old.name,
            vrf_uid=old.vrf_uid,
            epg_id=old.epg_id,
            provides=(old.provides | frozenset(provides_add))
            - frozenset(provides_drop),
            consumes=(old.consumes | frozenset(consumes_add))
            - frozenset(consumes_drop),
        )
        tenant = self.controller.policy.tenant_of(epg_uid).name
        self.controller.modify_object(tenant, new, detail="churn rewiring")
        return new

    def _apply_flap(self, event: LinkFlap) -> Dict:
        rng = random.Random(event.draw_seed)
        candidates = self._healthy_leaves()
        if not candidates:
            return self._skip(event, "no healthy leaf to flap")
        victim = rng.choice(candidates)
        make_switch_unresponsive(self.controller, victim)
        self.clock.tick(event.down_ticks)
        restore_switch(self.controller, victim)
        self._resync(victim)
        return {
            "event": event.kind,
            "seq": event.seq,
            "switch": victim,
            "down_ticks": event.down_ticks,
        }

    def _apply_reboot(self, event: SwitchReboot) -> Dict:
        rng = random.Random(event.draw_seed)
        candidates = self._healthy_leaves()
        if not candidates:
            return self._skip(event, "no healthy leaf to reboot")
        victim = rng.choice(candidates)
        switch = self.controller.fabric.switch(victim)
        lost = switch.tcam.remove_where(lambda rule: True)
        agent = switch.agent
        agent.logical_view.clear()
        agent.local_attachments.clear()
        agent.applied_instructions.clear()
        agent.state = AgentState.RUNNING
        agent.crash_after = None
        switch.fault_log.raise_fault(
            self.clock.peek(),
            victim,
            FaultCode.SWITCH_UNREACHABLE,
            detail="switch rebooted: TCAM and agent view wiped",
        )
        self._resync(victim)
        return {
            "event": event.kind,
            "seq": event.seq,
            "switch": victim,
            "rules_lost": len(lost),
        }

    def _apply_drain(self, event: SwitchDrain) -> Dict:
        rng = random.Random(event.draw_seed)
        candidates = self._healthy_leaves()
        if not candidates:
            return self._skip(event, "no healthy leaf to drain")
        victim = rng.choice(candidates)
        make_switch_unresponsive(self.controller, victim)
        self._drained[victim] = self._events_seen + event.duration_events
        return {
            "event": event.kind,
            "seq": event.seq,
            "switch": victim,
            "duration_events": event.duration_events,
        }

    def _apply_faults(self, event: FaultBurst) -> Dict:
        # A long fault-heavy stream can strip every eligible object's rules
        # (the injector refuses up front when candidates < count, strict or
        # not); clamping keeps exhaustion a deterministic skip, not a crash.
        available = len(self.injector.faultable_objects())
        if available == 0:
            return self._skip(event, "no faultable object with deployed rules")
        faults = self.injector.inject_random_faults(
            min(event.count, available),
            kinds=self.fault_kinds,
            strict=False,
            seed=event.draw_seed,
        )
        touched: Set[str] = set()
        for fault in faults:
            touched.update(fault.removed_rules)
        return {
            "event": event.kind,
            "seq": event.seq,
            "objects": sorted(fault.object_uid for fault in faults),
            "kinds": [fault.kind.value for fault in faults],
            "switches": sorted(touched),
        }

    # ------------------------------------------------------------------ #
    # The differential oracle
    # ------------------------------------------------------------------ #
    def checkpoint(self, seq: int = 0) -> CheckpointRecord:
        """Compare the incremental state against a from-scratch full check."""
        with span("churn.checkpoint.incremental"):
            if self.monitor.pending_events():
                self.monitor.poll(force=True)
            incremental = self.monitor.report()
        with span("churn.checkpoint.full_check"):
            # With max_workers set the from-scratch sweep reuses the
            # system's warm pool across checkpoints; the oracle compares
            # semantic fingerprints, which the engine guarantees identical
            # whatever executor (or cache state) ran the check.
            full = self.system.check(
                parallel=self.max_workers is not None,
                max_workers=self.max_workers,
            )
        self._last_full_report = full
        record = CheckpointRecord(
            seq=seq,
            incremental_fingerprint=incremental.semantic_fingerprint(),
            full_fingerprint=full.semantic_fingerprint(),
            violating_switches=full.switches_with_violations(),
            incident_switches=sorted(
                {incident.switch_uid for incident in self.monitor.store.active()}
            ),
        )
        self._last_checkpoint = record
        if not record.ok:
            # Dump before the strict raise so the black box captures the
            # events leading up to the divergence, strict mode or not.
            dump_flightrecord(
                "churn-divergence",
                seq=seq,
                diverged=record.diverged,
                incidents_consistent=record.incidents_consistent,
            )
        if self.strict and not record.ok:
            problems = []
            if record.diverged:
                problems.append(
                    "incremental state diverged from the full check "
                    f"({record.incremental_fingerprint[:12]} != "
                    f"{record.full_fingerprint[:12]})"
                )
            if not record.incidents_consistent:
                problems.append(
                    f"incident ledger mismatch (violating={record.violating_switches}, "
                    f"incidents={record.incident_switches})"
                )
            raise ChurnDivergenceError(
                f"checkpoint at seq {seq}: " + "; ".join(problems), checkpoint=record
            )
        return record

    def effective_ground_truth(
        self, report: Optional[EquivalenceReport] = None
    ) -> List[str]:
        """Injected fault objects whose rules are *still* missing.

        Churn can silently repair a fault — any policy push to a faulted
        switch resynchronizes its whole TCAM — so the localization target is
        the injected objects that remain broken, not everything ever injected.
        """
        if report is None:
            report = self._last_full_report or self.system.check()
        still_missing: Set[str] = set()
        for rules in report.missing_rules().values():
            for rule in rules:
                still_missing.update(rule.objects())
        return sorted(
            {
                fault.object_uid
                for fault in self.injector.injected
                if fault.object_uid in still_missing
            }
        )

    # ------------------------------------------------------------------ #
    # Stream execution
    # ------------------------------------------------------------------ #
    def run(self, events: Optional[Sequence[ChurnEvent]] = None) -> ChurnReport:
        """Apply the whole stream (generated from the profile by default)."""
        start = time.perf_counter()
        stream = (
            list(events) if events is not None else generate_churn_stream(self.profile)
        )
        report = ChurnReport(profile=self.profile)
        with span("churn.run", events=len(stream)):
            for event in stream:
                record = self.apply(event)
                report.records.append(record)
                if isinstance(event, Checkpoint):
                    # ``apply`` stored the full CheckpointRecord on the way out.
                    report.checkpoints.append(self._last_checkpoint)
                elif "skipped" in record:
                    report.skipped += 1
                else:
                    report.counts[event.kind] = report.counts.get(event.kind, 0) + 1
                self.clock.tick()
                self.monitor.poll()
        if report.checkpoints:
            report.final_fingerprint = report.checkpoints[-1].full_fingerprint
            report.ground_truth = self.effective_ground_truth()
        for monitor_pass in self.monitor.passes:
            report.incidents_opened += len(monitor_pass.opened)
            report.incidents_resolved += len(monitor_pass.resolved)
        report.monitor_stats = self.monitor.stats()
        report.duration_seconds = time.perf_counter() - start
        return report
