"""Typed events flowing through the online monitoring subsystem.

The batch pipeline answers "is the deployed state consistent *right now*?"
by sweeping the whole network.  The online pipeline instead reacts to the
individual state transitions a live controller and fabric produce:

* :class:`PolicyChanged` — a management action hit the controller change
  log (object added / modified / deleted);
* :class:`RuleInstalled` — a switch agent wrote a rule into its TCAM;
* :class:`RuleLost` — a rule left a TCAM (removed, evicted, rejected at
  install time, or corrupted by a bit error);
* :class:`DeviceFault` — a device fault log raised a new record (agent
  crash, unresponsive switch, TCAM overflow, ...).

Events are frozen dataclasses stamped with the shared logical clock, so an
event trace is fully deterministic and replayable.  They carry enough
provenance (object uid / rule / device uid) for the incremental checker to
compute a blast radius without consulting global state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fabric.faultlog import FaultCode
from ..policy.objects import ObjectType
from ..protocol import Operation
from ..rules import TcamRule

__all__ = [
    "Event",
    "PolicyChanged",
    "RuleInstalled",
    "RuleLost",
    "DeviceFault",
]


@dataclass(frozen=True)
class Event:
    """Base class: every event carries the logical time it occurred at."""

    timestamp: int

    def describe(self) -> str:
        return f"t={self.timestamp} {type(self).__name__}"


@dataclass(frozen=True)
class PolicyChanged(Event):
    """A management action was applied to one policy object."""

    object_uid: str
    object_type: ObjectType
    operation: Operation
    detail: str = ""

    def describe(self) -> str:
        return f"t={self.timestamp} policy-changed {self.operation.value} {self.object_uid}"


@dataclass(frozen=True)
class RuleInstalled(Event):
    """A rule was written into one switch's TCAM."""

    switch_uid: str
    rule: TcamRule

    def describe(self) -> str:
        return f"t={self.timestamp} rule-installed {self.switch_uid} {self.rule.describe()}"


@dataclass(frozen=True)
class RuleLost(Event):
    """A rule left one switch's TCAM (or never made it in).

    ``cause`` is the TCAM write kind: ``"removed"``, ``"evicted"``,
    ``"rejected"`` (install bounced off a full table) or ``"corrupted"``.
    """

    switch_uid: str
    rule: TcamRule
    cause: str = "removed"

    def describe(self) -> str:
        return f"t={self.timestamp} rule-lost({self.cause}) {self.switch_uid} {self.rule.describe()}"


@dataclass(frozen=True)
class DeviceFault(Event):
    """A device (or the controller, about a device) raised a fault record."""

    device_uid: str
    code: FaultCode
    detail: str = ""

    def describe(self) -> str:
        return f"t={self.timestamp} device-fault {self.device_uid} {self.code.value}"
