"""Typed events flowing through the online monitoring subsystem.

The batch pipeline answers "is the deployed state consistent *right now*?"
by sweeping the whole network.  The online pipeline instead reacts to the
individual state transitions a live controller and fabric produce:

* :class:`PolicyChanged` — a management action hit the controller change
  log (object added / modified / deleted);
* :class:`RuleInstalled` — a switch agent wrote a rule into its TCAM;
* :class:`RuleLost` — a rule left a TCAM (removed, evicted, rejected at
  install time, or corrupted by a bit error);
* :class:`DeviceFault` — a device fault log raised a new record (agent
  crash, unresponsive switch, TCAM overflow, ...).

Events are frozen dataclasses stamped with the shared logical clock, so an
event trace is fully deterministic and replayable.  They carry enough
provenance (object uid / rule / device uid) for the incremental checker to
compute a blast radius without consulting global state.

Every event also round-trips through a kind-tagged dict
(:meth:`Event.to_dict` / :func:`event_from_dict`), so a monitor snapshot can
carry its pending batch across a process boundary without losing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..fabric.faultlog import FaultCode
from ..policy.objects import ObjectType
from ..protocol import Operation
from ..rules import TcamRule

__all__ = [
    "Event",
    "PolicyChanged",
    "RuleInstalled",
    "RuleLost",
    "DeviceFault",
    "event_from_dict",
]


@dataclass(frozen=True)
class Event:
    """Base class: every event carries the logical time it occurred at."""

    timestamp: int

    def describe(self) -> str:
        return f"t={self.timestamp} {type(self).__name__}"

    def to_dict(self) -> Dict:
        """Kind-tagged JSON-ready form; see :func:`event_from_dict`."""
        raise NotImplementedError(f"{type(self).__name__} is not serializable")


@dataclass(frozen=True)
class PolicyChanged(Event):
    """A management action was applied to one policy object."""

    object_uid: str
    object_type: ObjectType
    operation: Operation
    detail: str = ""

    def describe(self) -> str:
        return f"t={self.timestamp} policy-changed {self.operation.value} {self.object_uid}"

    def to_dict(self) -> Dict:
        return {
            "kind": "policy-changed",
            "timestamp": self.timestamp,
            "object_uid": self.object_uid,
            "object_type": self.object_type.value,
            "operation": self.operation.value,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class RuleInstalled(Event):
    """A rule was written into one switch's TCAM."""

    switch_uid: str
    rule: TcamRule

    def describe(self) -> str:
        return f"t={self.timestamp} rule-installed {self.switch_uid} {self.rule.describe()}"

    def to_dict(self) -> Dict:
        return {
            "kind": "rule-installed",
            "timestamp": self.timestamp,
            "switch_uid": self.switch_uid,
            "rule": self.rule.to_dict(),
        }


@dataclass(frozen=True)
class RuleLost(Event):
    """A rule left one switch's TCAM (or never made it in).

    ``cause`` is the TCAM write kind: ``"removed"``, ``"evicted"``,
    ``"rejected"`` (install bounced off a full table) or ``"corrupted"``.
    """

    switch_uid: str
    rule: TcamRule
    cause: str = "removed"

    def describe(self) -> str:
        return f"t={self.timestamp} rule-lost({self.cause}) {self.switch_uid} {self.rule.describe()}"

    def to_dict(self) -> Dict:
        return {
            "kind": "rule-lost",
            "timestamp": self.timestamp,
            "switch_uid": self.switch_uid,
            "rule": self.rule.to_dict(),
            "cause": self.cause,
        }


@dataclass(frozen=True)
class DeviceFault(Event):
    """A device (or the controller, about a device) raised a fault record."""

    device_uid: str
    code: FaultCode
    detail: str = ""

    def describe(self) -> str:
        return f"t={self.timestamp} device-fault {self.device_uid} {self.code.value}"

    def to_dict(self) -> Dict:
        return {
            "kind": "device-fault",
            "timestamp": self.timestamp,
            "device_uid": self.device_uid,
            "code": self.code.value,
            "detail": self.detail,
        }


def event_from_dict(data: Dict) -> Event:
    """Rebuild one event from its :meth:`Event.to_dict` form.

    Raises :class:`ValueError` on an unknown kind tag or a malformed enum
    value — a snapshot carrying events a newer (or corrupted) writer
    produced should fail loudly at restore time, not at poll time.
    """
    kind = data.get("kind")
    if kind == "policy-changed":
        return PolicyChanged(
            timestamp=data["timestamp"],
            object_uid=data["object_uid"],
            object_type=ObjectType(data["object_type"]),
            operation=Operation(data["operation"]),
            detail=data.get("detail", ""),
        )
    if kind == "rule-installed":
        return RuleInstalled(
            timestamp=data["timestamp"],
            switch_uid=data["switch_uid"],
            rule=TcamRule.from_dict(data["rule"]),
        )
    if kind == "rule-lost":
        return RuleLost(
            timestamp=data["timestamp"],
            switch_uid=data["switch_uid"],
            rule=TcamRule.from_dict(data["rule"]),
            cause=data.get("cause", "removed"),
        )
    if kind == "device-fault":
        return DeviceFault(
            timestamp=data["timestamp"],
            device_uid=data["device_uid"],
            code=FaultCode(data["code"]),
            detail=data.get("detail", ""),
        )
    raise ValueError(f"unknown event kind {kind!r}")
