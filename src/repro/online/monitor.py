"""The continuous monitoring daemon.

:class:`NetworkMonitor` closes the loop the paper's architecture (§V,
Figure 6) runs as a batch pipeline:

1. :func:`~repro.online.instrument.instrument` turns controller/fabric state
   transitions into typed events on an :class:`~repro.online.bus.EventBus`;
2. the monitor buffers events and *debounces* them against the shared
   :class:`~repro.clock.LogicalClock` — a burst (one deployment touches
   hundreds of rules) collapses into a single processing pass once the
   clock has advanced ``debounce_ticks`` past the last event;
3. a pass asks the :class:`~repro.online.delta.IncrementalChecker` to
   re-validate only the blast radius, runs a *scoped* SCOUT localization
   (per-switch risk model, existing :class:`~repro.core.scout.ScoutLocalizer`)
   on every switch still violating, and drives the
   :class:`~repro.online.incidents.IncidentStore` lifecycle:
   a new violation opens an incident, a changed one updates it, a clean
   re-check resolves it.

The monitor is synchronous and deterministic: ``poll()`` is the single
entry point, so simulations and tests control exactly when work happens.

Partitioning
------------
``partitions=N`` shards the monitor: a :class:`~repro.online.partition.PartitionMap`
(rule-count-weighted LPT, same planner as the parallel sweep) assigns every
switch an owner, each partition runs its own :class:`IncrementalChecker`
scoped to its slice, and a poll refreshes the partitions (concurrently when
``max_workers`` allows) before merging their disjoint results into one
deterministic, uid-sorted incident pass.  Verdicts are partition-independent
— each switch is judged from the same logical/deployed state whoever owns
it — so a partitioned monitor is fingerprint-identical to a single one.

Snapshot / restore
------------------
:meth:`NetworkMonitor.snapshot` captures checker state (all partitions,
merged), the incident store, the pending event batch and the debounce
bookkeeping as one JSON-ready dict; :meth:`NetworkMonitor.restore` (or
:meth:`NetworkMonitor.from_snapshot`) adopts it without a full-fabric
recheck — ``full_checks`` does not move — and the restored monitor's
report and incident journal stay byte-identical to a never-restarted
monitor consuming the same stream.  Restoring into a different partition
count is a rebalance: the merged state reshards along the new map.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..controller.controller import Controller
from ..core.hypothesis import Hypothesis
from ..obs import correlated, current_corr_id, span
from ..core.scout import RecentChangeOracle, ScoutLocalizer
from ..parallel.pool import WarmWorkerPool
from ..risk.augment import augment_switch_model
from ..risk.switch_model import build_switch_risk_model
from ..verify.checker import EquivalenceChecker, EquivalenceReport, SwitchCheckResult
from .bus import EventBus
from .delta import IncrementalChecker, merge_checker_states
from .events import (
    DeviceFault,
    Event,
    PolicyChanged,
    RuleInstalled,
    RuleLost,
    event_from_dict,
)
from .incidents import Incident, IncidentStore
from .instrument import Instrumentation, instrument
from .partition import PartitionMap

__all__ = ["MonitorPass", "NetworkMonitor", "SNAPSHOT_VERSION"]

#: Version tag stamped into (and required of) monitor snapshots.
SNAPSHOT_VERSION = 1


@dataclass
class MonitorPass:
    """What one processing pass of the monitor did."""

    triggered_at: int
    events: int
    switches_rechecked: List[str] = field(default_factory=list)
    opened: List[Incident] = field(default_factory=list)
    updated: List[Incident] = field(default_factory=list)
    resolved: List[Incident] = field(default_factory=list)

    @property
    def quiet(self) -> bool:
        """True when the pass changed no incident."""
        return not (self.opened or self.updated or self.resolved)

    def to_dict(self) -> Dict:
        """JSON-ready form (incidents via :meth:`Incident.to_dict`)."""
        return {
            "triggered_at": self.triggered_at,
            "events": self.events,
            "quiet": self.quiet,
            "switches_rechecked": list(self.switches_rechecked),
            "opened": [incident.to_dict() for incident in self.opened],
            "updated": [incident.to_dict() for incident in self.updated],
            "resolved": [incident.to_dict() for incident in self.resolved],
        }

    def describe(self) -> str:
        lines = [
            f"monitor pass at t={self.triggered_at}: {self.events} event(s), "
            f"rechecked {len(self.switches_rechecked)} switch(es) "
            f"({', '.join(self.switches_rechecked) or '-'})"
        ]
        for label, incidents in (
            ("opened", self.opened),
            ("updated", self.updated),
            ("resolved", self.resolved),
        ):
            for incident in incidents:
                lines.append(f"  {label}: {incident.describe()}")
        return "\n".join(lines)


class NetworkMonitor:
    """Event-driven equivalence checking and continuous SCOUT localization."""

    def __init__(
        self,
        controller: Controller,
        bus: Optional[EventBus] = None,
        checker: Optional[EquivalenceChecker] = None,
        localizer: Optional[ScoutLocalizer] = None,
        store: Optional[IncidentStore] = None,
        debounce_ticks: int = 1,
        max_wait_ticks: Optional[int] = None,
        change_window: int = 100,
        max_workers: Optional[int] = None,
        partitions: int = 1,
        partition_map: Optional[PartitionMap] = None,
    ) -> None:
        self.controller = controller
        self.clock = controller.clock
        self.bus = bus or EventBus()
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        #: The switch-ownership split (``None`` for an unpartitioned
        #: monitor).  An explicit map wins over ``partitions`` — that is how
        #: a restore keeps the ownership a snapshot was taken under.
        if partition_map is not None:
            self.partition_map: Optional[PartitionMap] = partition_map
        elif partitions > 1:
            self.partition_map = self._plan_partition_map(controller, partitions)
        else:
            self.partition_map = None
        self.partitions = (
            len(self.partition_map) if self.partition_map is not None else 1
        )
        base_checker = checker or EquivalenceChecker()
        self._checkers: List[IncrementalChecker] = []
        for index in range(self.partitions):
            if index == 0:
                part_checker = base_checker
            else:
                # Sibling partitions may refresh on concurrent threads, and
                # the atom table is not thread-safe — every partition gets
                # its own engine clone (same space/engine/limits, own atoms).
                part_checker = EquivalenceChecker(
                    rule_space=base_checker.rule_space,
                    engine=base_checker.engine,
                    bdd_limit=base_checker.bdd_limit,
                    ap_limit=base_checker.ap_limit,
                )
            owned = (
                self._owner_predicate(index) if self.partition_map is not None else None
            )
            self._checkers.append(
                IncrementalChecker(controller, checker=part_checker, owned=owned)
            )
        #: Partition 0's checker — the whole checker for an unpartitioned
        #: monitor, so every pre-partitioning caller keeps working.
        self.delta = self._checkers[0]
        self._partition_pools: List[Optional[WarmWorkerPool]] = [
            None for _ in range(self.partitions)
        ]
        self.localizer = localizer or ScoutLocalizer(
            change_oracle=RecentChangeOracle(
                change_log=controller.change_log, window=change_window
            )
        )
        self.store = store or IncidentStore()
        #: Worker budget for refresh passes.  ``None`` keeps every recheck
        #: inline; a value lets large blast radii use the sharded engine
        #: (small ones still run inline via its small-fabric cutoff).
        self.max_workers = max_workers
        self.debounce_ticks = debounce_ticks
        #: Upper bound on how long a pending batch may wait for the burst to
        #: settle; without it, a steady event stream would starve the monitor
        #: forever.  Defaults to five debounce windows.
        self.max_wait_ticks = (
            max_wait_ticks if max_wait_ticks is not None else 5 * debounce_ticks
        )
        self.passes: List[MonitorPass] = []
        self._pending: List[Event] = []
        self._first_event_at: Optional[int] = None
        self._last_event_at: Optional[int] = None
        self._instrumentation: Optional[Instrumentation] = None
        #: Monotonic poll counter — part of the deterministic poll corr id,
        #: carried through snapshots so a restored monitor's incident corr
        #: ids continue the sequence instead of restarting it.
        self._poll_seq = 0
        self._restores = 0
        self._restored_passes = 0
        self._restored_events = 0

    @staticmethod
    def _plan_partition_map(controller: Controller, partitions: int) -> PartitionMap:
        """LPT-balance the fabric's switches by deployed rule count."""
        switches = controller.fabric.switches
        weights = {
            uid: max(1, len(switch.deployed_rules()))
            for uid, switch in switches.items()
        }
        return PartitionMap.plan(switches, partitions, weights=weights)

    def _owner_predicate(self, index: int) -> Callable[[str], bool]:
        partition_map = self.partition_map
        assert partition_map is not None
        return lambda uid: partition_map.partition_of(uid) == index

    def _checker_for(self, switch_uid: str) -> IncrementalChecker:
        """The checker owning ``switch_uid`` (the sole checker unpartitioned)."""
        if self.partition_map is None:
            return self.delta
        return self._checkers[self.partition_map.partition_of(switch_uid)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._instrumentation is not None

    def start(self) -> EquivalenceReport:
        """Instrument the controller/fabric and establish the baseline.

        The bootstrap is the monitor's one full sweep; violations already
        present open incidents immediately, so a monitor attached to a
        degraded network starts with an accurate picture.
        """
        if self.running:
            raise RuntimeError("monitor is already running")
        self._instrumentation = instrument(self.controller, self.bus)
        self.bus.subscribe(self._on_event)
        if self.partitions == 1:
            report = self.delta.bootstrap()
            results = dict(report.results)
        else:
            results = {}
            for index, checker in enumerate(self._checkers):
                with span("monitor.bootstrap", partition=index):
                    results.update(checker.bootstrap().results)
            report = EquivalenceReport()
            for switch_uid in sorted(results):
                report.update(results[switch_uid])
        baseline = MonitorPass(triggered_at=self.clock.peek(), events=0)
        self._apply_results(results, baseline)
        if not baseline.quiet:
            self.passes.append(baseline)
        # Bootstrapping consumed the current state; drop events the sweep
        # itself may have triggered observers for.
        self._pending.clear()
        self._first_event_at = None
        self._last_event_at = None
        return report

    def stop(self) -> None:
        """Detach from the controller/fabric; the incident store survives."""
        if self._instrumentation is not None:
            self._instrumentation.detach()
            self._instrumentation = None
        self.bus.unsubscribe(self._on_event)

    def close(self) -> None:
        """Detach (if attached) and release every worker pool."""
        if self.running:
            self.stop()
        self.release_workers()

    def release_workers(self) -> None:
        """Shut down partition pools and checker pools; the monitor stays
        attached and usable (pools are re-created lazily on the next need)."""
        for index, pool in enumerate(self._partition_pools):
            if pool is not None:
                pool.shutdown()
                self._partition_pools[index] = None
        for checker in self._checkers:
            checker.close()

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #
    def _on_event(self, event: Event) -> None:
        self._pending.append(event)
        if self._first_event_at is None:
            self._first_event_at = event.timestamp
        self._last_event_at = event.timestamp
        if isinstance(event, PolicyChanged):
            # Policy blast radii can land on any partition's switches, so
            # the change is broadcast; each checker resolves it against its
            # own slice.
            for checker in self._checkers:
                checker.note_policy_change(
                    event.object_uid, event.object_type, event.operation
                )
        elif isinstance(event, (RuleInstalled, RuleLost)):
            self._checker_for(event.switch_uid).note_switch_change(event.switch_uid)
        elif isinstance(event, DeviceFault):
            if event.device_uid in self.controller.fabric:
                self._checker_for(event.device_uid).note_switch_change(
                    event.device_uid
                )

    def pending_events(self) -> int:
        return len(self._pending)

    def due(self, now: Optional[int] = None) -> bool:
        """True when the pending burst has settled for ``debounce_ticks``.

        A batch also comes due once its *oldest* event has waited
        ``max_wait_ticks``, so a steady event stream (which never settles)
        cannot starve detection indefinitely.
        """
        if not self._pending:
            return False
        if self._last_event_at is None:
            return True
        now = self.clock.peek() if now is None else now
        if now - self._last_event_at >= self.debounce_ticks:
            return True
        return (
            self._first_event_at is not None
            and now - self._first_event_at >= self.max_wait_ticks
        )

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def poll(self, force: bool = False) -> Optional[MonitorPass]:
        """Process the pending event batch if it is due (or ``force`` is set).

        Returns the :class:`MonitorPass` describing what happened, or
        ``None`` when there was nothing (ready) to do.
        """
        if not self._pending:
            return None
        now = self.clock.peek()
        if not force and not self.due(now):
            return None
        events = self._pending
        first_event_at = self._first_event_at
        self._pending = []
        self._first_event_at = None
        self._poll_seq += 1
        # The correlated() wrapper opens before the span so the poll span and
        # everything beneath it — localization, worker shards, the incident
        # the pass may open — share one id: the caller's, when an HTTP
        # request triggered the poll, else a *deterministic* poll id (clock
        # time + poll sequence number, both snapshot-carried), so the corr
        # ids stamped onto incidents replay byte-identically across runs
        # and restarts.
        corr_id = current_corr_id() or f"poll-t{now}-{self._poll_seq:06d}"
        with correlated(corr_id=corr_id):
            with span("monitor.poll", events=len(events)) as poll_span:
                fault_codes: Dict[str, Set[str]] = {}
                for event in events:
                    if isinstance(event, DeviceFault):
                        fault_codes.setdefault(event.device_uid, set()).add(
                            event.code.value
                        )
                try:
                    refreshed = self._refresh_all()
                except BaseException:
                    # A failed refresh (broken worker pool, engine bug) must
                    # not lose the batch: put the events back in front of
                    # anything that arrived meanwhile and restore the
                    # debounce timestamps, so due() fires again and the next
                    # poll retries the same work.
                    self._pending = events + self._pending
                    self._first_event_at = first_event_at
                    if self._last_event_at is None and events:
                        self._last_event_at = events[-1].timestamp
                    self._poll_seq -= 1
                    raise
                result = MonitorPass(triggered_at=now, events=len(events))
                self._apply_results(refreshed, result, fault_codes)
                poll_span.count("rechecked", len(result.switches_rechecked))
        self.passes.append(result)
        return result

    def _refresh_all(self) -> Dict[str, SwitchCheckResult]:
        """Refresh every partition and merge their disjoint result maps.

        With a worker budget the partitions refresh on concurrent threads,
        each batching its digest-failing switches through its own persistent
        warm pool; otherwise they run serially inline.  If any partition
        fails, switches the *successful* partitions already re-checked are
        re-dirtied before the error propagates, so the retry re-applies
        their (cheap, digest-answered) verdicts in the same pass as the
        recovered partition's — no incident transition is lost or split.
        """
        if self.partitions == 1:
            return self.delta.refresh(max_workers=self.max_workers)
        refreshed: Dict[str, SwitchCheckResult] = {}
        failures: List[BaseException] = []
        if self.max_workers is not None and self.max_workers != 1:
            budget = max(2, self.max_workers // self.partitions)

            def run_partition(index: int, checker: IncrementalChecker):
                with span("monitor.partition", partition=index):
                    return checker.refresh(
                        executor=self._partition_pool(index), max_workers=budget
                    )

            with ThreadPoolExecutor(
                max_workers=min(self.partitions, self.max_workers),
                thread_name_prefix="monitor-partition",
            ) as threads:
                futures = [
                    # copy_context() ships the ambient corr id and span down
                    # to the worker thread (both are context-local).
                    threads.submit(
                        contextvars.copy_context().run, run_partition, index, checker
                    )
                    for index, checker in enumerate(self._checkers)
                ]
                for future in futures:
                    try:
                        refreshed.update(future.result())
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        failures.append(exc)
        else:
            for index, checker in enumerate(self._checkers):
                try:
                    with span("monitor.partition", partition=index):
                        refreshed.update(checker.refresh())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failures.append(exc)
                    break
        if failures:
            for switch_uid in refreshed:
                self._checker_for(switch_uid).note_switch_change(switch_uid)
            raise failures[0]
        return refreshed

    def _partition_pool(self, index: int) -> WarmWorkerPool:
        """The lazily created persistent warm pool of one partition.

        A warm pool needs at least two workers to leave inline mode (and to
        populate its memo caches), so each partition gets its share of the
        budget, floored at two — mild oversubscription is deliberate: memo
        hits keep most workers idle.
        """
        pool = self._partition_pools[index]
        if pool is None or pool.closed:
            budget = max(2, (self.max_workers or 2) // self.partitions)
            pool = WarmWorkerPool(max_workers=budget)
            self._partition_pools[index] = pool
        return pool

    def worker_pools(self) -> List[WarmWorkerPool]:
        """Every live warm pool the monitor owns — the partition executors
        plus any pool a checker spun up for itself (health/metrics rollups
        read these)."""
        pools = [pool for pool in self._partition_pools if pool is not None]
        for checker in self._checkers:
            pool = getattr(checker, "_pool", None)
            if pool is not None:
                pools.append(pool)
        return pools

    def _apply_results(
        self,
        results: Dict[str, SwitchCheckResult],
        monitor_pass: MonitorPass,
        fault_codes: Optional[Dict[str, Set[str]]] = None,
    ) -> None:
        now = monitor_pass.triggered_at
        # Capture, per faulted device, the incident that was active *during*
        # the batch — before the lifecycle step below can resolve it.  A
        # fault observed in the same pass that resolves its switch's
        # incident belongs to that incident, not to the void.
        batch_incidents: Dict[str, Optional[Incident]] = {
            device_uid: self.store.active_for(device_uid)
            for device_uid in (fault_codes or {})
        }
        for switch_uid in sorted(results):
            result = results[switch_uid]
            monitor_pass.switches_rechecked.append(switch_uid)
            active = self.store.active_for(switch_uid)
            if not result.equivalent:
                hypothesis = self._localize_switch(switch_uid, result)
                suspects = sorted(str(risk) for risk in hypothesis.objects())
                if active is None:
                    incident = self.store.open(
                        switch_uid,
                        now,
                        missing_rules=result.missing_count(),
                        extra_rules=len(result.extra_rules),
                        suspects=suspects,
                        corr_id=current_corr_id(),
                    )
                    monitor_pass.opened.append(incident)
                elif (
                    active.missing_rules != result.missing_count()
                    or active.extra_rules != len(result.extra_rules)
                    or active.suspects != suspects
                ):
                    incident = self.store.update(
                        switch_uid,
                        now,
                        missing_rules=result.missing_count(),
                        extra_rules=len(result.extra_rules),
                        suspects=suspects,
                    )
                    monitor_pass.updated.append(incident)
                # An unchanged violation is not an update: the incident (and
                # anything paging on it) only moves when the evidence does.
            elif active is not None:
                incident = self.store.resolve(switch_uid, now)
                if incident is not None:
                    monitor_pass.resolved.append(incident)
        for device_uid, codes in sorted((fault_codes or {}).items()):
            # Fall back to the now-active incident for a switch whose
            # incident *opened* in this very pass.
            incident = batch_incidents.get(device_uid) or self.store.active_for(
                device_uid
            )
            for code in sorted(codes):
                self.store.note_fault(device_uid, code, incident=incident)

    def _localize_switch(self, switch_uid: str, result: SwitchCheckResult) -> Hypothesis:
        """Scoped SCOUT: one switch risk model, augmented with its misses."""
        with span("monitor.localize", switch=switch_uid):
            index = self._checker_for(switch_uid).index
            model = build_switch_risk_model(index, switch_uid)
            augment_switch_model(model, result.missing_rules)
            return self.localizer.localize(model)

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """The monitor's full state as one JSON-ready dict.

        Carries the merged checker state of every partition, the incident
        store, the pending (not yet polled) event batch with its debounce
        timestamps, the partition map and the poll/clock counters — enough
        for :meth:`restore` to resume exactly where this monitor stands,
        with no full-fabric recheck and byte-identical downstream output.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "kind": "monitor-snapshot",
            "clock": self.clock.peek(),
            "partitions": self.partitions,
            "partition_map": (
                self.partition_map.to_dict() if self.partition_map is not None else None
            ),
            "debounce_ticks": self.debounce_ticks,
            "max_wait_ticks": self.max_wait_ticks,
            "poll_seq": self._poll_seq,
            "passes": len(self.passes) + self._restored_passes,
            "events_seen": self.bus.total_events() + self._restored_events,
            "pending_events": [event.to_dict() for event in self._pending],
            "first_event_at": self._first_event_at,
            "last_event_at": self._last_event_at,
            "checker": merge_checker_states(
                [checker.snapshot_state() for checker in self._checkers]
            ),
            "incidents": self.store.snapshot(),
        }

    def restore(self, snapshot: Dict) -> None:
        """Adopt a :meth:`snapshot` payload and attach to the controller.

        Must be called *instead of* :meth:`start` (on a monitor that is not
        running): the checker state deserializes in place of the bootstrap
        sweep, so ``full_checks`` does not move; the incident store refills
        in place (references held by the service stay valid); pending events
        and debounce timestamps come back so not even an unprocessed batch
        is lost; and instrumentation attaches last, after all state is in
        place.  The logical clock catches up to the snapshot's time if it
        is behind (it never runs backward).
        """
        if self.running:
            raise RuntimeError("cannot restore a running monitor (stop it first)")
        if snapshot.get("kind") != "monitor-snapshot":
            raise ValueError("not a monitor snapshot (missing kind tag)")
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported monitor snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        snapshot_clock = snapshot.get("clock", 0)
        behind = snapshot_clock - self.clock.peek()
        if behind > 0:
            self.clock.tick(behind)
        self.debounce_ticks = snapshot.get("debounce_ticks", self.debounce_ticks)
        max_wait = snapshot.get("max_wait_ticks")
        if max_wait is not None:
            self.max_wait_ticks = max_wait
        self._poll_seq = snapshot.get("poll_seq", 0)
        self._restored_passes = snapshot.get("passes", 0)
        self._restored_events = snapshot.get("events_seen", 0)
        checker_state = snapshot["checker"]
        for index, checker in enumerate(self._checkers):
            # Counters land on partition 0 only: they were merged across
            # partitions at snapshot time, so restoring the sum everywhere
            # would multiply it.  Aggregated stats() sums right back.
            checker.restore_state(checker_state, with_stats=(index == 0))
        self.store.restore(snapshot.get("incidents", {"incidents": [], "counter": 0}))
        self._pending = [
            event_from_dict(data) for data in snapshot.get("pending_events", ())
        ]
        self._first_event_at = snapshot.get("first_event_at")
        self._last_event_at = snapshot.get("last_event_at")
        self._restores += 1
        self._instrumentation = instrument(self.controller, self.bus)
        self.bus.subscribe(self._on_event)

    @classmethod
    def from_snapshot(
        cls,
        controller: Controller,
        snapshot: Dict,
        partitions: Optional[int] = None,
        **kwargs,
    ) -> "NetworkMonitor":
        """Build a monitor around ``controller`` and restore ``snapshot``.

        Without ``partitions`` the snapshot's own partition map is reused —
        ownership survives the restart even if the fabric's rule weights
        shifted meanwhile.  Passing a different count is a *rebalance*: the
        merged checker state reshards along a freshly planned map (safe,
        because per-switch verdicts are partition-independent).
        """
        stored_map = snapshot.get("partition_map")
        count = partitions if partitions is not None else snapshot.get("partitions", 1)
        partition_map: Optional[PartitionMap] = None
        if stored_map is not None and count == len(stored_map.get("shards", ())):
            partition_map = PartitionMap.from_dict(stored_map)
        monitor = cls(
            controller,
            partitions=count,
            partition_map=partition_map,
            **kwargs,
        )
        monitor.restore(snapshot)
        return monitor

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def report(self) -> EquivalenceReport:
        """The live network-wide L-T verdict (no sweep; may lag pending events)."""
        if self.partitions == 1:
            return self.delta.report()
        results: Dict[str, SwitchCheckResult] = {}
        for checker in self._checkers:
            results.update(checker.results())
        report = EquivalenceReport()
        for switch_uid in sorted(results):
            report.update(results[switch_uid])
        return report

    def stats(self) -> Dict[str, int]:
        combined = dict(self.delta.stats())
        for checker in self._checkers[1:]:
            for key, value in checker.stats().items():
                # Atom-table gauges are per-engine-clone, not additive.
                if key in ("atom_version", "atom_patches"):
                    continue
                combined[key] = combined.get(key, 0) + value
        combined.update(
            {
                "events_seen": self.bus.total_events() + self._restored_events,
                "pending_events": len(self._pending),
                "passes": len(self.passes) + self._restored_passes,
                "incidents": len(self.store),
                "active_incidents": len(self.store.active()),
                "partitions": self.partitions,
                "restores": self._restores,
            }
        )
        return combined
