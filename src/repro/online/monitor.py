"""The continuous monitoring daemon.

:class:`NetworkMonitor` closes the loop the paper's architecture (§V,
Figure 6) runs as a batch pipeline:

1. :func:`~repro.online.instrument.instrument` turns controller/fabric state
   transitions into typed events on an :class:`~repro.online.bus.EventBus`;
2. the monitor buffers events and *debounces* them against the shared
   :class:`~repro.clock.LogicalClock` — a burst (one deployment touches
   hundreds of rules) collapses into a single processing pass once the
   clock has advanced ``debounce_ticks`` past the last event;
3. a pass asks the :class:`~repro.online.delta.IncrementalChecker` to
   re-validate only the blast radius, runs a *scoped* SCOUT localization
   (per-switch risk model, existing :class:`~repro.core.scout.ScoutLocalizer`)
   on every switch still violating, and drives the
   :class:`~repro.online.incidents.IncidentStore` lifecycle:
   a new violation opens an incident, a changed one updates it, a clean
   re-check resolves it.

The monitor is synchronous and deterministic: ``poll()`` is the single
entry point, so simulations and tests control exactly when work happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..controller.controller import Controller
from ..core.hypothesis import Hypothesis
from ..obs import correlated, current_corr_id, span
from ..core.scout import RecentChangeOracle, ScoutLocalizer
from ..risk.augment import augment_switch_model
from ..risk.switch_model import build_switch_risk_model
from ..verify.checker import EquivalenceChecker, EquivalenceReport, SwitchCheckResult
from .bus import EventBus
from .delta import IncrementalChecker
from .events import DeviceFault, Event, PolicyChanged, RuleInstalled, RuleLost
from .incidents import Incident, IncidentStore
from .instrument import Instrumentation, instrument

__all__ = ["MonitorPass", "NetworkMonitor"]


@dataclass
class MonitorPass:
    """What one processing pass of the monitor did."""

    triggered_at: int
    events: int
    switches_rechecked: List[str] = field(default_factory=list)
    opened: List[Incident] = field(default_factory=list)
    updated: List[Incident] = field(default_factory=list)
    resolved: List[Incident] = field(default_factory=list)

    @property
    def quiet(self) -> bool:
        """True when the pass changed no incident."""
        return not (self.opened or self.updated or self.resolved)

    def to_dict(self) -> Dict:
        """JSON-ready form (incidents via :meth:`Incident.to_dict`)."""
        return {
            "triggered_at": self.triggered_at,
            "events": self.events,
            "quiet": self.quiet,
            "switches_rechecked": list(self.switches_rechecked),
            "opened": [incident.to_dict() for incident in self.opened],
            "updated": [incident.to_dict() for incident in self.updated],
            "resolved": [incident.to_dict() for incident in self.resolved],
        }

    def describe(self) -> str:
        lines = [
            f"monitor pass at t={self.triggered_at}: {self.events} event(s), "
            f"rechecked {len(self.switches_rechecked)} switch(es) "
            f"({', '.join(self.switches_rechecked) or '-'})"
        ]
        for label, incidents in (
            ("opened", self.opened),
            ("updated", self.updated),
            ("resolved", self.resolved),
        ):
            for incident in incidents:
                lines.append(f"  {label}: {incident.describe()}")
        return "\n".join(lines)


class NetworkMonitor:
    """Event-driven equivalence checking and continuous SCOUT localization."""

    def __init__(
        self,
        controller: Controller,
        bus: Optional[EventBus] = None,
        checker: Optional[EquivalenceChecker] = None,
        localizer: Optional[ScoutLocalizer] = None,
        store: Optional[IncidentStore] = None,
        debounce_ticks: int = 1,
        max_wait_ticks: Optional[int] = None,
        change_window: int = 100,
        max_workers: Optional[int] = None,
    ) -> None:
        self.controller = controller
        self.clock = controller.clock
        self.bus = bus or EventBus()
        self.delta = IncrementalChecker(controller, checker=checker)
        self.localizer = localizer or ScoutLocalizer(
            change_oracle=RecentChangeOracle(
                change_log=controller.change_log, window=change_window
            )
        )
        self.store = store or IncidentStore()
        #: Worker budget for refresh passes.  ``None`` keeps every recheck
        #: inline; a value lets large blast radii use the sharded engine
        #: (small ones still run inline via its small-fabric cutoff).
        self.max_workers = max_workers
        self.debounce_ticks = debounce_ticks
        #: Upper bound on how long a pending batch may wait for the burst to
        #: settle; without it, a steady event stream would starve the monitor
        #: forever.  Defaults to five debounce windows.
        self.max_wait_ticks = (
            max_wait_ticks if max_wait_ticks is not None else 5 * debounce_ticks
        )
        self.passes: List[MonitorPass] = []
        self._pending: List[Event] = []
        self._first_event_at: Optional[int] = None
        self._last_event_at: Optional[int] = None
        self._instrumentation: Optional[Instrumentation] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._instrumentation is not None

    def start(self) -> EquivalenceReport:
        """Instrument the controller/fabric and establish the baseline.

        The bootstrap is the monitor's one full sweep; violations already
        present open incidents immediately, so a monitor attached to a
        degraded network starts with an accurate picture.
        """
        if self.running:
            raise RuntimeError("monitor is already running")
        self._instrumentation = instrument(self.controller, self.bus)
        self.bus.subscribe(self._on_event)
        report = self.delta.bootstrap()
        baseline = MonitorPass(triggered_at=self.clock.peek(), events=0)
        self._apply_results(dict(report.results), baseline)
        if not baseline.quiet:
            self.passes.append(baseline)
        # Bootstrapping consumed the current state; drop events the sweep
        # itself may have triggered observers for.
        self._pending.clear()
        self._first_event_at = None
        self._last_event_at = None
        return report

    def stop(self) -> None:
        """Detach from the controller/fabric; the incident store survives."""
        if self._instrumentation is not None:
            self._instrumentation.detach()
            self._instrumentation = None
        self.bus.unsubscribe(self._on_event)

    def close(self) -> None:
        """Detach (if attached) and release the checker's worker pool."""
        if self.running:
            self.stop()
        self.delta.close()

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #
    def _on_event(self, event: Event) -> None:
        self._pending.append(event)
        if self._first_event_at is None:
            self._first_event_at = event.timestamp
        self._last_event_at = event.timestamp
        if isinstance(event, PolicyChanged):
            self.delta.note_policy_change(
                event.object_uid, event.object_type, event.operation
            )
        elif isinstance(event, (RuleInstalled, RuleLost)):
            self.delta.note_switch_change(event.switch_uid)
        elif isinstance(event, DeviceFault):
            if event.device_uid in self.controller.fabric:
                self.delta.note_switch_change(event.device_uid)

    def pending_events(self) -> int:
        return len(self._pending)

    def due(self, now: Optional[int] = None) -> bool:
        """True when the pending burst has settled for ``debounce_ticks``.

        A batch also comes due once its *oldest* event has waited
        ``max_wait_ticks``, so a steady event stream (which never settles)
        cannot starve detection indefinitely.
        """
        if not self._pending:
            return False
        if self._last_event_at is None:
            return True
        now = self.clock.peek() if now is None else now
        if now - self._last_event_at >= self.debounce_ticks:
            return True
        return (
            self._first_event_at is not None
            and now - self._first_event_at >= self.max_wait_ticks
        )

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #
    def poll(self, force: bool = False) -> Optional[MonitorPass]:
        """Process the pending event batch if it is due (or ``force`` is set).

        Returns the :class:`MonitorPass` describing what happened, or
        ``None`` when there was nothing (ready) to do.
        """
        if not self._pending:
            return None
        now = self.clock.peek()
        if not force and not self.due(now):
            return None
        events = self._pending
        self._pending = []
        self._first_event_at = None
        # The correlated() wrapper opens before the span so the poll span and
        # everything beneath it — localization, worker shards, the incident
        # the pass may open — share one id (the caller's, when an HTTP
        # request triggered the poll; a fresh "poll-..." id otherwise).
        with correlated(prefix="poll"):
            with span("monitor.poll", events=len(events)) as poll_span:
                fault_codes: Dict[str, Set[str]] = {}
                for event in events:
                    if isinstance(event, DeviceFault):
                        fault_codes.setdefault(event.device_uid, set()).add(
                            event.code.value
                        )
                refreshed = self.delta.refresh(max_workers=self.max_workers)
                result = MonitorPass(triggered_at=now, events=len(events))
                self._apply_results(refreshed, result, fault_codes)
                poll_span.count("rechecked", len(result.switches_rechecked))
        self.passes.append(result)
        return result

    def _apply_results(
        self,
        results: Dict[str, SwitchCheckResult],
        monitor_pass: MonitorPass,
        fault_codes: Optional[Dict[str, Set[str]]] = None,
    ) -> None:
        now = monitor_pass.triggered_at
        for switch_uid in sorted(results):
            result = results[switch_uid]
            monitor_pass.switches_rechecked.append(switch_uid)
            active = self.store.active_for(switch_uid)
            if not result.equivalent:
                hypothesis = self._localize_switch(switch_uid, result)
                suspects = sorted(str(risk) for risk in hypothesis.objects())
                if active is None:
                    incident = self.store.open(
                        switch_uid,
                        now,
                        missing_rules=result.missing_count(),
                        extra_rules=len(result.extra_rules),
                        suspects=suspects,
                        corr_id=current_corr_id(),
                    )
                    monitor_pass.opened.append(incident)
                elif (
                    active.missing_rules != result.missing_count()
                    or active.extra_rules != len(result.extra_rules)
                    or active.suspects != suspects
                ):
                    incident = self.store.update(
                        switch_uid,
                        now,
                        missing_rules=result.missing_count(),
                        extra_rules=len(result.extra_rules),
                        suspects=suspects,
                    )
                    monitor_pass.updated.append(incident)
                # An unchanged violation is not an update: the incident (and
                # anything paging on it) only moves when the evidence does.
            elif active is not None:
                incident = self.store.resolve(switch_uid, now)
                if incident is not None:
                    monitor_pass.resolved.append(incident)
        for device_uid, codes in sorted((fault_codes or {}).items()):
            for code in sorted(codes):
                self.store.note_fault(device_uid, code)

    def _localize_switch(self, switch_uid: str, result: SwitchCheckResult) -> Hypothesis:
        """Scoped SCOUT: one switch risk model, augmented with its misses."""
        with span("monitor.localize", switch=switch_uid):
            model = build_switch_risk_model(self.delta.index, switch_uid)
            augment_switch_model(model, result.missing_rules)
            return self.localizer.localize(model)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def report(self) -> EquivalenceReport:
        """The live network-wide L-T verdict (no sweep; may lag pending events)."""
        return self.delta.report()

    def stats(self) -> Dict[str, int]:
        return {
            **self.delta.stats(),
            "events_seen": self.bus.total_events(),
            "pending_events": len(self._pending),
            "passes": len(self.passes),
            "incidents": len(self.store),
            "active_incidents": len(self.store.active()),
        }
