"""Wiring between the batch substrate and the event bus.

The controller and the fabric already expose listener hooks on the three
stores the paper's logs live in — the change log, the device/controller
fault logs and the per-switch TCAM tables.  :func:`instrument` subscribes to
all of them for one controller/fabric pair and republishes every state
transition as a typed event:

================================  =================================
source hook                       event published
================================  =================================
``ChangeLog.subscribe``           :class:`PolicyChanged`
``FaultLogBook.subscribe``        :class:`DeviceFault`
``TcamTable.subscribe``           :class:`RuleInstalled` /
                                  :class:`RuleLost`
================================  =================================

The returned :class:`Instrumentation` detaches every listener again, so a
monitor can be stopped without leaving dangling callbacks on the fabric.
"""

from __future__ import annotations

from typing import Callable, List

from ..controller.changelog import ChangeRecord
from ..controller.controller import Controller
from ..fabric.faultlog import FaultRecord
from ..rules import TcamRule
from .bus import EventBus
from .events import DeviceFault, PolicyChanged, RuleInstalled, RuleLost

__all__ = ["Instrumentation", "instrument"]


class Instrumentation:
    """Handle over one controller/fabric instrumentation; detachable."""

    def __init__(self) -> None:
        self._detachers: List[Callable[[], None]] = []

    def add(self, detacher: Callable[[], None]) -> None:
        self._detachers.append(detacher)

    def detach(self) -> None:
        """Remove every listener this instrumentation installed."""
        for detacher in reversed(self._detachers):
            detacher()
        self._detachers.clear()

    def __len__(self) -> int:
        return len(self._detachers)


def instrument(controller: Controller, bus: EventBus) -> Instrumentation:
    """Republish every controller/fabric state transition onto ``bus``."""
    inst = Instrumentation()
    clock = controller.clock

    def on_change(record: ChangeRecord) -> None:
        bus.publish(
            PolicyChanged(
                timestamp=record.timestamp,
                object_uid=record.object_uid,
                object_type=record.object_type,
                operation=record.operation,
                detail=record.detail,
            )
        )

    controller.change_log.subscribe(on_change)
    inst.add(lambda: controller.change_log.unsubscribe(on_change))

    def on_fault(record: FaultRecord) -> None:
        bus.publish(
            DeviceFault(
                timestamp=record.raised_at,
                device_uid=record.device_uid,
                code=record.code,
                detail=record.detail,
            )
        )

    controller.fault_log.subscribe(on_fault)
    inst.add(lambda: controller.fault_log.unsubscribe(on_fault))

    for switch_uid in sorted(controller.fabric.switches):
        switch = controller.fabric.switches[switch_uid]

        def on_tcam(kind: str, rule: TcamRule, _switch_uid: str = switch_uid) -> None:
            if kind == "installed":
                bus.publish(
                    RuleInstalled(timestamp=clock.peek(), switch_uid=_switch_uid, rule=rule)
                )
            else:
                bus.publish(
                    RuleLost(
                        timestamp=clock.peek(), switch_uid=_switch_uid, rule=rule, cause=kind
                    )
                )

        switch.tcam.subscribe(on_tcam)
        inst.add(lambda s=switch, h=on_tcam: s.tcam.unsubscribe(h))
        switch.fault_log.subscribe(on_fault)
        inst.add(lambda s=switch: s.fault_log.unsubscribe(on_fault))

    return inst
