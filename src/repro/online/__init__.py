"""Online monitoring: event-driven incremental checking and continuous SCOUT.

The batch pipeline (:class:`~repro.core.system.ScoutSystem`) answers one
question at one point in time by sweeping the whole network.  This package
turns it into a continuous monitor running against a live controller:

* :mod:`~repro.online.events` / :mod:`~repro.online.bus` — typed events and
  a deterministic publish/subscribe bus;
* :mod:`~repro.online.instrument` — listener wiring that republishes change
  log, fault log and TCAM writes as events;
* :mod:`~repro.online.delta` — the incremental L-T equivalence checker
  (per-switch digests, blast-radius re-checks);
* :mod:`~repro.online.monitor` — the debouncing daemon driving scoped SCOUT
  runs and the incident lifecycle;
* :mod:`~repro.online.incidents` — the JSONL-persistable incident store.
"""

from .bus import EventBus
from .delta import IncrementalChecker, SwitchDigest
from .events import DeviceFault, Event, PolicyChanged, RuleInstalled, RuleLost
from .incidents import Incident, IncidentStatus, IncidentStore
from .instrument import Instrumentation, instrument
from .monitor import MonitorPass, NetworkMonitor

__all__ = [
    "DeviceFault",
    "Event",
    "EventBus",
    "Incident",
    "IncidentStatus",
    "IncidentStore",
    "IncrementalChecker",
    "Instrumentation",
    "MonitorPass",
    "NetworkMonitor",
    "PolicyChanged",
    "RuleInstalled",
    "RuleLost",
    "SwitchDigest",
    "instrument",
]
