"""Online monitoring: event-driven incremental checking and continuous SCOUT.

The batch pipeline (:class:`~repro.core.system.ScoutSystem`) answers one
question at one point in time by sweeping the whole network.  This package
turns it into a continuous monitor running against a live controller:

* :mod:`~repro.online.events` / :mod:`~repro.online.bus` — typed events and
  a deterministic publish/subscribe bus;
* :mod:`~repro.online.instrument` — listener wiring that republishes change
  log, fault log and TCAM writes as events;
* :mod:`~repro.online.delta` — the incremental L-T equivalence checker
  (per-switch digests, blast-radius re-checks);
* :mod:`~repro.online.monitor` — the debouncing daemon driving scoped SCOUT
  runs and the incident lifecycle (partitionable, snapshot/restorable);
* :mod:`~repro.online.partition` — deterministic switch-ownership maps for
  the partitioned monitor;
* :mod:`~repro.online.incidents` — the JSONL-persistable incident store.
"""

from .bus import EventBus
from .delta import IncrementalChecker, SwitchDigest, merge_checker_states
from .events import (
    DeviceFault,
    Event,
    PolicyChanged,
    RuleInstalled,
    RuleLost,
    event_from_dict,
)
from .incidents import Incident, IncidentStatus, IncidentStore
from .instrument import Instrumentation, instrument
from .monitor import SNAPSHOT_VERSION, MonitorPass, NetworkMonitor
from .partition import PartitionMap

__all__ = [
    "DeviceFault",
    "Event",
    "EventBus",
    "Incident",
    "IncidentStatus",
    "IncidentStore",
    "IncrementalChecker",
    "Instrumentation",
    "MonitorPass",
    "NetworkMonitor",
    "PartitionMap",
    "PolicyChanged",
    "RuleInstalled",
    "RuleLost",
    "SNAPSHOT_VERSION",
    "SwitchDigest",
    "event_from_dict",
    "instrument",
    "merge_checker_states",
]
