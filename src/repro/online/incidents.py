"""Incident store: the monitor's durable output.

Where a batch :class:`~repro.core.system.ScoutReport` is a one-shot answer,
the monitor tracks *incidents* — one per switch with an open L-T violation —
through the ``open → updated → resolved`` lifecycle.  An incident remembers
when it was opened, how often the violation changed while it was open, the
current SCOUT suspect set, and the device-fault codes seen while it was
active, which is the record an operator (or a paging pipeline) consumes.

Incidents serialize to plain dicts, and the store round-trips through JSONL
(one incident per line) so a long-running monitor can persist its state and
a later process can load the history back.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["IncidentStatus", "Incident", "IncidentStore"]


class IncidentStatus(str, enum.Enum):
    OPEN = "open"
    RESOLVED = "resolved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Incident:
    """One tracked violation on one switch."""

    incident_id: str
    switch_uid: str
    opened_at: int
    updated_at: int
    status: IncidentStatus = IncidentStatus.OPEN
    resolved_at: Optional[int] = None
    missing_rules: int = 0
    extra_rules: int = 0
    #: Stringified SCOUT hypothesis objects, sorted.
    suspects: List[str] = field(default_factory=list)
    #: Fault codes observed on the switch while the incident was active.
    fault_codes: List[str] = field(default_factory=list)
    #: How many times the violation changed after the incident opened.
    updates: int = 0
    #: Correlation id of the poll/request that opened the incident — the
    #: thread that ties it to spans, log lines and the flight record.
    corr_id: Optional[str] = None

    @property
    def is_open(self) -> bool:
        return self.status is IncidentStatus.OPEN

    def describe(self) -> str:
        state = (
            f"open since t={self.opened_at}"
            if self.is_open
            else f"resolved t={self.opened_at}..{self.resolved_at}"
        )
        suspects = ", ".join(self.suspects) if self.suspects else "-"
        return (
            f"[{self.incident_id}] {self.switch_uid} {state}: "
            f"{self.missing_rules} missing rule(s), suspects: {suspects}"
        )

    def to_dict(self) -> Dict:
        return {
            "incident_id": self.incident_id,
            "switch_uid": self.switch_uid,
            "opened_at": self.opened_at,
            "updated_at": self.updated_at,
            "status": self.status.value,
            "resolved_at": self.resolved_at,
            "missing_rules": self.missing_rules,
            "extra_rules": self.extra_rules,
            "suspects": list(self.suspects),
            "fault_codes": list(self.fault_codes),
            "updates": self.updates,
            "corr_id": self.corr_id,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Incident":
        for key in ("incident_id", "switch_uid"):
            if not isinstance(data.get(key, ""), str):
                raise ValueError(f"{key} must be a string, got {data[key]!r}")
        status_value = data.get("status", "open")
        try:
            status = IncidentStatus(status_value)
        except ValueError:
            known = ", ".join(member.value for member in IncidentStatus)
            raise ValueError(
                f"unknown incident status {status_value!r} (expected one of: {known})"
            ) from None
        # Timestamps compare against the logical clock all over the monitor,
        # so a journal that smuggles in a string (or a float, or a bool)
        # must fail at load time with the same file:line contract the status
        # check has — not later, deep inside a lifecycle comparison.
        for key in ("opened_at", "updated_at"):
            value = data.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{key} must be an integer, got {value!r}")
        resolved_at = data.get("resolved_at")
        if resolved_at is not None and (
            not isinstance(resolved_at, int) or isinstance(resolved_at, bool)
        ):
            raise ValueError(f"resolved_at must be an integer or null, got {resolved_at!r}")
        return cls(
            incident_id=data["incident_id"],
            switch_uid=data["switch_uid"],
            opened_at=data["opened_at"],
            updated_at=data["updated_at"],
            status=status,
            resolved_at=resolved_at,
            missing_rules=data.get("missing_rules", 0),
            extra_rules=data.get("extra_rules", 0),
            suspects=list(data.get("suspects", ())),
            fault_codes=list(data.get("fault_codes", ())),
            updates=data.get("updates", 0),
            corr_id=data.get("corr_id"),
        )


class IncidentStore:
    """All incidents a monitor produced, with at most one open per switch."""

    def __init__(self) -> None:
        self._incidents: Dict[str, Incident] = {}
        self._active_by_switch: Dict[str, str] = {}
        self._counter = 0
        #: Malformed JSONL lines skipped by a ``strict=False`` :meth:`load`.
        self.skipped_lines = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def open(
        self,
        switch_uid: str,
        time: int,
        missing_rules: int = 0,
        extra_rules: int = 0,
        suspects: Optional[List[str]] = None,
        corr_id: Optional[str] = None,
    ) -> Incident:
        """Open a new incident for ``switch_uid`` (which must have none open)."""
        if switch_uid in self._active_by_switch:
            raise ValueError(f"switch {switch_uid!r} already has an open incident")
        self._counter += 1
        incident = Incident(
            incident_id=f"INC-{self._counter:04d}",
            switch_uid=switch_uid,
            opened_at=time,
            updated_at=time,
            missing_rules=missing_rules,
            extra_rules=extra_rules,
            suspects=sorted(suspects or ()),
            corr_id=corr_id,
        )
        self._incidents[incident.incident_id] = incident
        self._active_by_switch[switch_uid] = incident.incident_id
        return incident

    def update(
        self,
        switch_uid: str,
        time: int,
        missing_rules: int = 0,
        extra_rules: int = 0,
        suspects: Optional[List[str]] = None,
    ) -> Incident:
        """Refresh the open incident of ``switch_uid`` with new evidence."""
        incident = self.active_for(switch_uid)
        if incident is None:
            raise ValueError(f"switch {switch_uid!r} has no open incident to update")
        incident.updated_at = time
        incident.missing_rules = missing_rules
        incident.extra_rules = extra_rules
        incident.suspects = sorted(suspects or ())
        incident.updates += 1
        return incident

    def resolve(self, switch_uid: str, time: int) -> Optional[Incident]:
        """Close the open incident of ``switch_uid`` (no-op when none is open)."""
        incident_id = self._active_by_switch.pop(switch_uid, None)
        if incident_id is None:
            return None
        incident = self._incidents[incident_id]
        incident.status = IncidentStatus.RESOLVED
        incident.resolved_at = time
        incident.updated_at = time
        return incident

    def resolve_incident(self, incident_id: str, time: int) -> Optional[Incident]:
        """Close one incident *by id* (no-op when unknown or already closed).

        Unlike :meth:`resolve`, this targets exactly the addressed incident —
        the right primitive for an operator ack over the API, and safe even
        on journals that violated the one-open-per-switch invariant.
        """
        incident = self._incidents.get(incident_id)
        if incident is None or not incident.is_open:
            return None
        if self._active_by_switch.get(incident.switch_uid) == incident_id:
            del self._active_by_switch[incident.switch_uid]
        incident.status = IncidentStatus.RESOLVED
        incident.resolved_at = time
        incident.updated_at = time
        return incident

    def note_fault(
        self, switch_uid: str, code: str, incident: Optional[Incident] = None
    ) -> None:
        """Attach a device fault code to the switch's open incident.

        Passing ``incident`` targets a specific incident — the one that was
        *active during the batch* — so a fault observed in the same pass
        that resolved the incident still lands on it instead of vanishing.
        """
        if incident is None:
            incident = self.active_for(switch_uid)
        if incident is not None and code not in incident.fault_codes:
            incident.fault_codes.append(code)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def active_for(self, switch_uid: str) -> Optional[Incident]:
        incident_id = self._active_by_switch.get(switch_uid)
        return self._incidents.get(incident_id) if incident_id is not None else None

    def active(self) -> List[Incident]:
        return [incident for incident in self._incidents.values() if incident.is_open]

    def resolved(self) -> List[Incident]:
        return [incident for incident in self._incidents.values() if not incident.is_open]

    def all(self) -> List[Incident]:
        return list(self._incidents.values())

    def get(self, incident_id: str) -> Optional[Incident]:
        return self._incidents.get(incident_id)

    def __len__(self) -> int:
        return len(self._incidents)

    # ------------------------------------------------------------------ #
    # Snapshot / restore (monitor restart support)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """JSON-ready state: incidents in journal order plus the id counter."""
        return {
            "incidents": [incident.to_dict() for incident in self._incidents.values()],
            "counter": self._counter,
        }

    def restore(self, state: Dict) -> None:
        """Replace this store's contents in place from :meth:`snapshot`.

        In place matters: the service (and anything else holding a reference
        to the store) keeps seeing the restored incidents without re-wiring.
        """
        incidents = [Incident.from_dict(data) for data in state.get("incidents", ())]
        self._incidents.clear()
        self._active_by_switch.clear()
        for incident in incidents:
            self._incidents[incident.incident_id] = incident
            if incident.is_open:
                self._active_by_switch[incident.switch_uid] = incident.incident_id
        counter = state.get("counter", 0)
        if not isinstance(counter, int) or isinstance(counter, bool):
            raise ValueError(f"counter must be an integer, got {counter!r}")
        self._counter = counter

    # ------------------------------------------------------------------ #
    # JSONL persistence
    # ------------------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """All incidents, one JSON object per line (oldest first)."""
        return "\n".join(json.dumps(incident.to_dict()) for incident in self._incidents.values())

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically replace ``path`` with the current journal.

        The content lands in a temp file in the same directory first and is
        renamed over the target with :func:`os.replace`, so a crash mid-save
        can never leave a truncated journal behind — the reader sees either
        the old journal or the new one, both complete.
        """
        path = Path(path)
        content = self.to_jsonl()
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(content + "\n" if content else "")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path], strict: bool = True) -> "IncidentStore":
        """Load a JSONL journal, tolerating the ways real journals go bad.

        Blank/whitespace-only lines are always skipped.  A malformed line —
        truncated JSON, a non-object payload, a missing required key or an
        unknown status string — raises :class:`ValueError` naming the file,
        line number and problem; with ``strict=False`` such lines are skipped
        instead and counted in :attr:`skipped_lines` (the right mode for a
        monitor restarting over a journal a crash may have truncated).
        """
        store = cls()
        path = Path(path)
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(data).__name__}"
                    )
                incident = Incident.from_dict(data)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if strict:
                    problem = (
                        f"missing required key {exc}"
                        if isinstance(exc, KeyError)
                        else str(exc)
                    )
                    raise ValueError(
                        f"{path}:{lineno}: malformed incident line: {problem}"
                    ) from exc
                store.skipped_lines += 1
                continue
            store._incidents[incident.incident_id] = incident
            if incident.is_open:
                store._active_by_switch[incident.switch_uid] = incident.incident_id
            # Keep the counter ahead of every loaded id so new ids stay unique.
            try:
                number = int(incident.incident_id.rsplit("-", 1)[-1])
            except ValueError:
                number = 0
            store._counter = max(store._counter, number)
        return store
