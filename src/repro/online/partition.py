"""Deterministic switch-ownership partitioning for the sharded monitor.

A partitioned :class:`~repro.online.monitor.NetworkMonitor` runs one
:class:`~repro.online.delta.IncrementalChecker` per partition, each owning a
disjoint slice of the fabric's switches.  :class:`PartitionMap` is the
assignment: built once with the same rule-count-weighted LPT planner the
parallel sweep uses (:func:`~repro.parallel.shards.plan_shards`), so the
split is a pure function of the switch uid set and their deployed rule
counts — two monitors over the same fabric always agree, and a snapshot can
carry the map across a restart byte-for-byte.

Switches the map has never seen (a leaf commissioned after the split) fall
back to a stable hash of the uid, so ownership stays deterministic without
replanning; a *rebalance* is simply restoring a snapshot into a monitor
built with a different partition count, which replans and reshards the
restored state (see ``NetworkMonitor.from_snapshot``).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..parallel.shards import plan_shards

__all__ = ["PartitionMap"]


class PartitionMap:
    """A deterministic switch-uid → partition-index assignment."""

    def __init__(self, shards: Iterable[Iterable[str]]) -> None:
        self.shards: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(shard) for shard in shards
        )
        if not self.shards:
            self.shards = ((),)
        self._owner: Dict[str, int] = {
            uid: index for index, shard in enumerate(self.shards) for uid in shard
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def plan(
        cls,
        switch_uids: Iterable[str],
        partitions: int,
        weights: Optional[Mapping[str, int]] = None,
    ) -> "PartitionMap":
        """LPT-balance ``switch_uids`` into exactly ``partitions`` slots.

        Unlike the shard planner (which drops empty shards), the monitor
        needs a *fixed* partition count — every partition runs a checker
        whether or not it currently owns a switch — so short plans are
        padded with empty slots.
        """
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        plan = plan_shards(switch_uids, partitions, weights=weights)
        shards: List[Tuple[str, ...]] = [tuple(shard) for shard in plan.shards]
        while len(shards) < partitions:
            shards.append(())
        return cls(shards)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.shards)

    def partition_of(self, uid: str) -> int:
        """The owning partition (stable hash fallback for unknown uids)."""
        owner = self._owner.get(uid)
        if owner is not None:
            return owner
        return zlib.crc32(uid.encode("utf-8")) % len(self.shards)

    def owned(self, partition: int) -> Tuple[str, ...]:
        """The planned uids of one partition (fallback-routed uids excluded)."""
        return self.shards[partition]

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {"shards": [list(shard) for shard in self.shards]}

    @classmethod
    def from_dict(cls, data: Dict) -> "PartitionMap":
        shards = data.get("shards")
        if not isinstance(shards, list) or not all(
            isinstance(shard, list) for shard in shards
        ):
            raise ValueError("partition map 'shards' must be a list of lists")
        return cls(shards)
