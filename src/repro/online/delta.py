"""Incremental L-T equivalence checking.

``ScoutSystem.check`` recompiles every logical rule, snapshots every TCAM
and compares the two network-wide — correct, but linear in the fabric for
every query.  :class:`IncrementalChecker` instead maintains a *live* verdict
that events patch in place:

* the logical (L) side is cached at **pair granularity**: one compiled rule
  map per EPG pair plus per-switch refcounted match-key maps, so a policy
  change only recompiles the pairs that depend on the changed object and
  patches their contribution in and out of the affected switches;
* each switch carries a :class:`SwitchDigest` — the match-key fingerprints
  of its logical and deployed rule sets — whose equality proves equivalence
  without running a checker engine at all (identical match/action sets have
  identical semantics);
* a dirty set fed by event notifications makes :meth:`refresh` re-check
  only the switches inside the blast radius of what actually happened.

Blast radius: a TCAM or device event dirties exactly its switch.  A policy
change dirties the EPG pairs depending on the changed object — under the
index *before* the change (the object may have been deleted) and under the
index rebuilt *after* it (the change may create new dependencies) — and,
through them, the switches those pairs are placed on.  Endpoint changes map
to their EPG's pairs, since attachments move rules between switches.

Structure-preserving modifies (filter entries, VRF scopes) take a fast path:
:meth:`~repro.policy.graph.PolicyIndex.refresh_object` patches the index in
place and no rebuild happens at all.  The one full sweep left is
:meth:`bootstrap`, which establishes the baseline every later delta patches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..controller.compiler import compile_pair_rules
from ..controller.controller import Controller
from ..obs import span
from ..parallel.executor import SMALL_FABRIC_SWITCHES
from ..parallel.pool import WarmWorkerPool
from ..policy.graph import PolicyIndex
from ..policy.objects import EpgPair, ObjectType
from ..protocol import Operation
from ..rules import MatchKey, TcamRule
from ..verify.checker import EquivalenceChecker, EquivalenceReport, SwitchCheckResult

__all__ = [
    "SwitchDigest",
    "IncrementalChecker",
    "merge_checker_states",
]

#: The per-run counters a checker snapshot carries (and a restore reapplies).
_STAT_KEYS = (
    "full_checks",
    "switch_checks",
    "digest_short_circuits",
    "pair_recompiles",
    "index_rebuilds",
    "index_patches",
)

#: Object types whose modify (same uid) cannot change the pair/placement
#: structure of the index — candidates for the in-place index patch.
_STRUCTURE_PRESERVING = (ObjectType.FILTER, ObjectType.VRF)


@dataclass(frozen=True)
class SwitchDigest:
    """Match-key fingerprints of one switch's logical and deployed rule sets."""

    logical: FrozenSet[MatchKey]
    deployed: FrozenSet[MatchKey]

    @property
    def clean(self) -> bool:
        """True when L and T hold exactly the same match/action sets."""
        return self.logical == self.deployed


class IncrementalChecker:
    """Event-driven per-switch L-T checking with pair-level deltas."""

    def __init__(
        self,
        controller: Controller,
        checker: Optional[EquivalenceChecker] = None,
        owned: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.controller = controller
        self.checker = checker or EquivalenceChecker()
        #: Ownership predicate for partitioned monitors: when set, this
        #: checker maintains switch-level state (rules, refs, digests,
        #: results, dirt) only for switches the predicate accepts, and skips
        #: compiling pairs placed entirely on foreign switches.  ``None``
        #: (the default) owns the whole fabric.
        self._owned = owned
        #: Lazily created warm pool for large batched refreshes; kept across
        #: refreshes so a churn storm's repeat offenders hit warm workers.
        self._pool: Optional[WarmWorkerPool] = None
        self._index: Optional[PolicyIndex] = None
        self._index_dirty = False
        self._results: Dict[str, SwitchCheckResult] = {}
        self._digests: Dict[str, SwitchDigest] = {}
        # The cached L side, patched at pair granularity.
        self._pair_rules: Dict[EpgPair, Dict[MatchKey, TcamRule]] = {}
        self._pair_placement: Dict[EpgPair, Tuple[str, ...]] = {}
        self._switch_refs: Dict[str, Dict[MatchKey, int]] = {}
        self._switch_rules: Dict[str, Dict[MatchKey, TcamRule]] = {}
        # Pending work.
        self._dirty_pairs: Set[EpgPair] = set()
        self._dirty: Set[str] = set()
        #: Object blast radii still to be resolved against the rebuilt index.
        self._pending_objects: List[Tuple[str, Optional[ObjectType]]] = []
        # Statistics (the benchmarks and the examples assert on these).
        self.full_checks = 0
        self.switch_checks = 0
        self.digest_short_circuits = 0
        self.pair_recompiles = 0
        self.index_rebuilds = 0
        self.index_patches = 0

    # ------------------------------------------------------------------ #
    # Index management
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> PolicyIndex:
        """The current policy index (rebuilt lazily after policy changes)."""
        if self._index is None:
            self.bootstrap()
        elif self._index_dirty:
            self._rebuild_index()
        assert self._index is not None
        return self._index

    def _rebuild_index(self) -> None:
        self._index = PolicyIndex(self.controller.policy)
        self._index_dirty = False
        self.index_rebuilds += 1
        for object_uid, object_type in self._pending_objects:
            self._dirty_pairs.update(
                self._pairs_for_object(self._index, object_uid, object_type)
            )
        self._pending_objects.clear()

    @staticmethod
    def _pairs_for_object(
        index: PolicyIndex, object_uid: str, object_type: Optional[ObjectType]
    ) -> Set[EpgPair]:
        """EPG pairs whose rules or placement can depend on ``object_uid``."""
        pairs = set(index.pairs_for_object(object_uid))
        if object_type is ObjectType.ENDPOINT:
            # Endpoints are not shared risks, but attaching/detaching one
            # moves its EPG's pairs between switches.
            try:
                endpoint = index.endpoint(object_uid)
            except KeyError:
                endpoint = None
            if endpoint is not None:
                pairs.update(index.pairs_for_object(endpoint.epg_uid))
        return pairs

    # ------------------------------------------------------------------ #
    # Event notifications (called by the monitor)
    # ------------------------------------------------------------------ #
    def note_policy_change(
        self,
        object_uid: str,
        object_type: Optional[ObjectType] = None,
        operation: Optional[Operation] = None,
    ) -> None:
        """A policy object changed: dirty its blast radius, old and new.

        Modifies of structure-preserving types (filters, VRFs) patch the
        index in place; everything else schedules a lazy index rebuild.
        """
        if self._index is None:
            return  # not bootstrapped yet: the first sweep sees everything
        # The held index predates every pending change, so its view of the
        # object's dependents is the correct "old" blast radius.
        self._dirty_pairs.update(
            self._pairs_for_object(self._index, object_uid, object_type)
        )
        if (
            not self._index_dirty
            and operation is Operation.MODIFY
            and object_type in _STRUCTURE_PRESERVING
            and self._index.refresh_object(object_uid, object_type)
        ):
            self.index_patches += 1
            return
        self._pending_objects.append((object_uid, object_type))
        self._index_dirty = True

    def note_switch_change(self, switch_uid: str) -> None:
        """A switch's deployed state (or health) changed: dirty just it."""
        if self._owns(switch_uid):
            self._dirty.add(switch_uid)

    def dirty_switches(self) -> Set[str]:
        return set(self._dirty)

    # ------------------------------------------------------------------ #
    # Pair-level logical-rule cache
    # ------------------------------------------------------------------ #
    def _owns(self, switch_uid: str) -> bool:
        return self._owned is None or self._owned(switch_uid)

    def _apply_pair(self, pair: EpgPair) -> None:
        """Re-derive one pair's rules/placement and patch the switch maps."""
        assert self._index is not None
        old_rules = self._pair_rules.get(pair, {})
        old_placement = self._pair_placement.get(pair, ())
        for switch_uid in old_placement:
            if not self._owns(switch_uid):
                continue
            refs = self._switch_refs.get(switch_uid, {})
            rules = self._switch_rules.get(switch_uid, {})
            for key in old_rules:
                remaining = refs.get(key, 0) - 1
                if remaining <= 0:
                    refs.pop(key, None)
                    rules.pop(key, None)
                else:
                    refs[key] = remaining
            self._dirty.add(switch_uid)

        new_rules: Dict[MatchKey, TcamRule] = {}
        if self._index.contracts_for_pair(pair):
            # A partitioned checker only compiles pairs that touch at least
            # one owned switch; the owning partitions cover the rest.
            if self._owned is None or any(
                self._owns(uid) for uid in self._index.switches_for_pair(pair)
            ):
                self.pair_recompiles += 1
                new_rules = {
                    rule.match_key(): rule
                    for rule in compile_pair_rules(self._index, pair)
                }
        new_placement = tuple(self._index.switches_for_pair(pair)) if new_rules else ()
        for switch_uid in new_placement:
            if not self._owns(switch_uid):
                continue
            refs = self._switch_refs.setdefault(switch_uid, {})
            rules = self._switch_rules.setdefault(switch_uid, {})
            for key, rule in new_rules.items():
                refs[key] = refs.get(key, 0) + 1
                rules.setdefault(key, rule)
            self._dirty.add(switch_uid)

        if new_rules:
            self._pair_rules[pair] = new_rules
            self._pair_placement[pair] = new_placement
        else:
            self._pair_rules.pop(pair, None)
            self._pair_placement.pop(pair, None)

    def logical_rules_for(self, switch_uid: str) -> List[TcamRule]:
        """The cached logical rule set of one switch (the live L side)."""
        return list(self._switch_rules.get(switch_uid, {}).values())

    # ------------------------------------------------------------------ #
    # Checking
    # ------------------------------------------------------------------ #
    def bootstrap(self) -> EquivalenceReport:
        """Full sweep establishing the baseline; clears all dirt."""
        with span("delta.bootstrap"):
            return self._bootstrap()

    def _bootstrap(self) -> EquivalenceReport:
        self._index = self.controller.build_index()
        self._index_dirty = False
        self._pending_objects.clear()
        self._dirty_pairs.clear()
        self._pair_rules = {}
        self._pair_placement = {}
        self._switch_refs = {}
        self._switch_rules = {}
        for pair in self._index.pairs:
            if self._owned is not None and not any(
                self._owns(uid) for uid in self._index.switches_for_pair(pair)
            ):
                continue
            rules = {
                rule.match_key(): rule for rule in compile_pair_rules(self._index, pair)
            }
            if not rules:
                continue
            placement = tuple(self._index.switches_for_pair(pair))
            self._pair_rules[pair] = rules
            self._pair_placement[pair] = placement
            for switch_uid in placement:
                if not self._owns(switch_uid):
                    continue
                refs = self._switch_refs.setdefault(switch_uid, {})
                bucket = self._switch_rules.setdefault(switch_uid, {})
                for key, rule in rules.items():
                    refs[key] = refs.get(key, 0) + 1
                    bucket.setdefault(key, rule)

        logical = {
            switch_uid: list(rules.values())
            for switch_uid, rules in self._switch_rules.items()
        }
        deployed = {
            switch_uid: rules
            for switch_uid, rules in self.controller.collect_deployed_rules().items()
            if self._owns(switch_uid)
        }
        report = self.checker.check_network(logical, deployed)
        self.full_checks += 1
        self._results = dict(report.results)
        self._digests = {
            switch_uid: SwitchDigest(
                logical=frozenset(self._switch_rules.get(switch_uid, {})),
                deployed=frozenset(r.match_key() for r in deployed.get(switch_uid, ())),
            )
            for switch_uid in set(logical) | set(deployed)
        }
        self._dirty.clear()
        return report

    def refresh(
        self,
        switch_uids: Optional[Sequence[str]] = None,
        executor=None,
        max_workers: Optional[int] = None,
    ) -> Dict[str, SwitchCheckResult]:
        """Re-check the dirty switches (plus any explicitly named ones).

        Returns the fresh result for every switch that was re-validated.
        Never-bootstrapped checkers bootstrap first and report every switch.

        A multi-event burst (a deployment storm, a rack losing power) can
        dirty a large slice of the fabric at once; passing ``max_workers``
        (or an ``executor``) batches the blast radius through the same
        shard planner the full-fabric parallel sweep uses.  Digest
        short-circuits still happen inline — only switches whose
        fingerprints disagree are shipped to the shard engine — and
        results are identical to the serial path.
        """
        if self._index is None:
            report = self.bootstrap()
            return dict(report.results)
        if switch_uids:
            self._dirty.update(switch_uids)
        digests_before = self.digest_short_circuits
        checks_before = self.switch_checks
        with span("delta.refresh", dirty=len(self._dirty)) as refresh_span:
            if self._index_dirty:
                self._rebuild_index()
            with span("delta.recompile_pairs", pairs=len(self._dirty_pairs)):
                for pair in sorted(self._dirty_pairs):
                    self._apply_pair(pair)
            self._dirty_pairs.clear()
            refreshed: Dict[str, SwitchCheckResult] = {}
            pending: list = []
            use_batch = executor is not None or (
                max_workers is not None and max_workers != 1
            )
            for switch_uid in sorted(self._dirty):
                if (
                    switch_uid not in self.controller.fabric.switches
                    and switch_uid not in self._switch_rules
                ):
                    # Neither an L nor a T side exists (a typo'd or decommissioned
                    # switch): fabricating a clean verdict would mask the mistake,
                    # and a serial check_network would emit nothing for it either.
                    self._results.pop(switch_uid, None)
                    self._digests.pop(switch_uid, None)
                    continue
                if not use_batch:
                    refreshed[switch_uid] = self._check_one(switch_uid)
                    continue
                logical_map, deployed, digest = self._digest_one(switch_uid)
                if digest.clean:
                    refreshed[switch_uid] = self._clean_result(
                        switch_uid, logical_map, deployed
                    )
                else:
                    pending.append((switch_uid, list(logical_map.values()), deployed))
            if pending:
                refreshed.update(self._check_batch(pending, executor, max_workers))
            self._dirty.clear()
            refresh_span.count(
                "digest_short_circuits", self.digest_short_circuits - digests_before
            )
            refresh_span.count("switch_checks", self.switch_checks - checks_before)
        return refreshed

    def _digest_one(self, switch_uid: str):
        """Fingerprint one switch's live L and T sides (cheap, in-process)."""
        logical_map = self._switch_rules.get(switch_uid, {})
        switch = self.controller.fabric.switches.get(switch_uid)
        deployed = switch.deployed_rules() if switch is not None else []
        digest = SwitchDigest(
            logical=frozenset(logical_map),
            deployed=frozenset(rule.match_key() for rule in deployed),
        )
        self._digests[switch_uid] = digest
        return logical_map, deployed, digest

    def _clean_result(
        self, switch_uid: str, logical_map: Dict, deployed: Sequence[TcamRule]
    ) -> SwitchCheckResult:
        """Record the digest-proven-equivalent verdict for one switch."""
        self.digest_short_circuits += 1
        result = SwitchCheckResult(
            switch_uid=switch_uid,
            equivalent=True,
            logical_count=len(logical_map),
            deployed_count=len(deployed),
            engine="digest",
        )
        self._results[switch_uid] = result
        return result

    def _check_one(self, switch_uid: str) -> SwitchCheckResult:
        logical_map, deployed, digest = self._digest_one(switch_uid)
        if digest.clean:
            return self._clean_result(switch_uid, logical_map, deployed)
        self.switch_checks += 1
        result = self.checker.check_switch(
            switch_uid, list(logical_map.values()), deployed
        )
        self._results[switch_uid] = result
        return result

    def _check_batch(
        self,
        pending: Sequence[tuple],
        executor,
        max_workers: Optional[int],
    ) -> Dict[str, SwitchCheckResult]:
        """Ship digest-failing switches to the shard engine as one batch.

        ``check_many`` plans the shards itself (rule-count-weighted LPT, the
        same planner the full-fabric sweep uses), so the blast radius is
        balanced the same way a full parallel check would balance it.
        Blast radii big enough to amortize processes run on this checker's
        persistent :class:`~repro.parallel.pool.WarmWorkerPool` so repeat
        offenders (a flapping switch re-dirtied every few events) are
        answered from warm worker caches; smaller ones stay inline via
        ``resolve_executor``'s fallback.
        """
        if executor is None and len(pending) >= SMALL_FABRIC_SWITCHES:
            if self._pool is None or self._pool.closed:
                self._pool = WarmWorkerPool(max_workers=max_workers)
            executor = self._pool
        report = self.checker.check_many(
            pending, executor=executor, max_workers=max_workers
        )
        self.switch_checks += len(report.results)
        self._results.update(report.results)
        return dict(report.results)

    def close(self) -> None:
        """Release the batch worker pool (and its warm caches), if any."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    def report(self) -> EquivalenceReport:
        """The live network-wide verdict assembled from per-switch results."""
        report = EquivalenceReport()
        for result in self._results.values():
            report.update(result)
        return report

    def result_for(self, switch_uid: str) -> Optional[SwitchCheckResult]:
        return self._results.get(switch_uid)

    def results(self) -> Dict[str, SwitchCheckResult]:
        """Every per-switch result this checker currently holds (a copy)."""
        return dict(self._results)

    def digest_for(self, switch_uid: str) -> Optional[SwitchDigest]:
        return self._digests.get(switch_uid)

    def missing_rules_for(self, switch_uid: str) -> List[TcamRule]:
        result = self._results.get(switch_uid)
        return list(result.missing_rules) if result is not None else []

    def stats(self) -> Dict[str, int]:
        return {
            "full_checks": self.full_checks,
            "switch_checks": self.switch_checks,
            "digest_short_circuits": self.digest_short_circuits,
            "pair_recompiles": self.pair_recompiles,
            "index_rebuilds": self.index_rebuilds,
            "index_patches": self.index_patches,
            "dirty_switches": len(self._dirty),
            # The persistent checker's atom table (atomic-predicate engine):
            # deltas *patch* it in place, so across refreshes the version
            # only moves when a genuinely new protocol/port value appears.
            "atom_version": self.checker.atoms.version,
            "atom_patches": self.checker.atoms.patches,
        }

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """The full checker state as one JSON-ready dict.

        Everything is serialized — results, digests, the pair-granular L
        cache, the per-switch rule/refcount maps, and the *dirt* (dirty
        switches/pairs, unresolved object blast radii, index staleness) —
        so :meth:`restore_state` is pure deserialization: no recompile, no
        sweep, and byte-identical behavior from the first post-restore
        refresh onward.
        """
        if self._index is None:
            raise RuntimeError("cannot snapshot a never-bootstrapped checker")
        return {
            "results": {
                uid: self._results[uid].to_dict() for uid in sorted(self._results)
            },
            "digests": {
                uid: {
                    "logical": [list(key) for key in _ordered_keys(digest.logical)],
                    "deployed": [list(key) for key in _ordered_keys(digest.deployed)],
                }
                for uid, digest in sorted(self._digests.items())
            },
            "pairs": [
                {
                    "pair": list(pair),
                    "rules": [
                        rule.to_dict() for rule in self._pair_rules[pair].values()
                    ],
                    "placement": list(self._pair_placement.get(pair, ())),
                }
                for pair in sorted(self._pair_rules)
            ],
            "switch_rules": {
                uid: [rule.to_dict() for rule in self._switch_rules[uid].values()]
                for uid in sorted(self._switch_rules)
            },
            "switch_refs": {
                uid: [
                    [list(key), count]
                    for key, count in self._switch_refs[uid].items()
                ]
                for uid in sorted(self._switch_refs)
            },
            "dirty_switches": sorted(self._dirty),
            "dirty_pairs": [list(pair) for pair in sorted(self._dirty_pairs)],
            "pending_objects": [
                [uid, object_type.value if object_type is not None else None]
                for uid, object_type in self._pending_objects
            ],
            "index_dirty": self._index_dirty,
            "stats": {key: getattr(self, key) for key in _STAT_KEYS},
        }

    def restore_state(self, state: Dict, with_stats: bool = True) -> None:
        """Adopt a :meth:`snapshot_state` payload (scoped to owned switches).

        The policy index is rebuilt from the controller's *current* policy —
        legitimate because every pre-snapshot change already recorded its
        old-index blast radius into the serialized dirty sets — and the
        saved ``index_dirty`` flag is kept, so unresolved object blast radii
        resolve against a rebuilt index exactly like an uninterrupted
        checker would.  No full sweep runs: ``full_checks`` moves only by
        what ``with_stats`` restores.
        """
        self._results = {
            uid: _result_from_dict(data)
            for uid, data in state.get("results", {}).items()
            if self._owns(uid)
        }
        self._digests = {
            uid: SwitchDigest(
                logical=frozenset(tuple(key) for key in digest["logical"]),
                deployed=frozenset(tuple(key) for key in digest["deployed"]),
            )
            for uid, digest in state.get("digests", {}).items()
            if self._owns(uid)
        }
        self._pair_rules = {}
        self._pair_placement = {}
        for entry in state.get("pairs", ()):
            placement = tuple(entry.get("placement", ()))
            if self._owned is not None and not any(
                self._owns(uid) for uid in placement
            ):
                continue
            pair = EpgPair(*entry["pair"])
            rules = [TcamRule.from_dict(data) for data in entry.get("rules", ())]
            self._pair_rules[pair] = {rule.match_key(): rule for rule in rules}
            self._pair_placement[pair] = placement
        self._switch_rules = {
            uid: {
                rule.match_key(): rule
                for rule in (TcamRule.from_dict(data) for data in rule_dicts)
            }
            for uid, rule_dicts in state.get("switch_rules", {}).items()
            if self._owns(uid)
        }
        self._switch_refs = {
            uid: {tuple(key): count for key, count in refs}
            for uid, refs in state.get("switch_refs", {}).items()
            if self._owns(uid)
        }
        self._dirty = {
            uid for uid in state.get("dirty_switches", ()) if self._owns(uid)
        }
        self._dirty_pairs = {
            EpgPair(*pair) for pair in state.get("dirty_pairs", ())
        }
        self._pending_objects = [
            (uid, ObjectType(type_value) if type_value is not None else None)
            for uid, type_value in state.get("pending_objects", ())
        ]
        self._index = self.controller.build_index()
        self._index_dirty = bool(state.get("index_dirty", False))
        if with_stats:
            for key in _STAT_KEYS:
                setattr(self, key, state.get("stats", {}).get(key, 0))


# ---------------------------------------------------------------------- #
# Snapshot plumbing
# ---------------------------------------------------------------------- #
def _ordered_keys(keys: FrozenSet[MatchKey]) -> List[MatchKey]:
    """Match keys in a stable order (``port`` may be ``None``, so a plain
    sort over the tuples would compare ``None`` with ``int``)."""
    return sorted(
        keys,
        key=lambda key: (
            key[0],
            key[1],
            key[2],
            key[3],
            key[4] is not None,
            key[4] if key[4] is not None else 0,
            key[5],
        ),
    )


def _result_from_dict(data: Dict) -> SwitchCheckResult:
    """Rebuild one per-switch result from ``SwitchCheckResult.to_dict``.

    (The service has an equivalent deserializer, but the online layer sits
    below it — importing it here would invert the package layering.)
    """
    return SwitchCheckResult(
        switch_uid=data["switch_uid"],
        equivalent=data["equivalent"],
        missing_rules=[TcamRule.from_dict(r) for r in data.get("missing_rules", ())],
        extra_rules=[TcamRule.from_dict(r) for r in data.get("extra_rules", ())],
        logical_count=data.get("logical_count", 0),
        deployed_count=data.get("deployed_count", 0),
        engine=data.get("engine", "bdd"),
    )


def merge_checker_states(states: Sequence[Dict]) -> Dict:
    """Merge per-partition :meth:`IncrementalChecker.snapshot_state` payloads.

    Switch-keyed maps are disjoint by ownership and merge trivially.  Pair
    caches overlap on pairs spanning a partition boundary — both owners
    compiled them from the same index, so either copy is correct and the
    merge dedupes by pair.  Dirty sets union; unresolved object blast radii
    dedupe in first-seen order (a partition whose index was rebuilt early,
    e.g. through an external ``.index`` access, holds a suffix of the
    others); counters sum, so aggregated monitor stats survive a restore.
    """
    if not states:
        raise ValueError("cannot merge zero checker states")
    merged: Dict = {
        "results": {},
        "digests": {},
        "pairs": [],
        "switch_rules": {},
        "switch_refs": {},
        "dirty_switches": set(),
        "dirty_pairs": set(),
        "pending_objects": [],
        "index_dirty": False,
        "stats": {key: 0 for key in _STAT_KEYS},
    }
    pairs: Dict[Tuple[str, str], Dict] = {}
    seen_pending = set()
    for state in states:
        merged["results"].update(state.get("results", {}))
        merged["digests"].update(state.get("digests", {}))
        merged["switch_rules"].update(state.get("switch_rules", {}))
        merged["switch_refs"].update(state.get("switch_refs", {}))
        merged["dirty_switches"].update(state.get("dirty_switches", ()))
        merged["dirty_pairs"].update(tuple(p) for p in state.get("dirty_pairs", ()))
        merged["index_dirty"] = merged["index_dirty"] or bool(
            state.get("index_dirty", False)
        )
        for entry in state.get("pairs", ()):
            pairs[tuple(entry["pair"])] = entry
        for uid, type_value in state.get("pending_objects", ()):
            if (uid, type_value) not in seen_pending:
                seen_pending.add((uid, type_value))
                merged["pending_objects"].append([uid, type_value])
        for key in _STAT_KEYS:
            merged["stats"][key] += state.get("stats", {}).get(key, 0)
    merged["pairs"] = [pairs[pair] for pair in sorted(pairs)]
    merged["results"] = {
        uid: merged["results"][uid] for uid in sorted(merged["results"])
    }
    merged["digests"] = {
        uid: merged["digests"][uid] for uid in sorted(merged["digests"])
    }
    merged["switch_rules"] = {
        uid: merged["switch_rules"][uid] for uid in sorted(merged["switch_rules"])
    }
    merged["switch_refs"] = {
        uid: merged["switch_refs"][uid] for uid in sorted(merged["switch_refs"])
    }
    merged["dirty_switches"] = sorted(merged["dirty_switches"])
    merged["dirty_pairs"] = [list(pair) for pair in sorted(merged["dirty_pairs"])]
    return merged
