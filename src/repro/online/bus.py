"""A synchronous, deterministic event bus.

The bus is deliberately minimal: publishing dispatches to subscribers in
subscription order on the caller's stack, so a simulation step that emits
events completes with every consumer fully up to date and no hidden
concurrency.  (The future async/sharded monitor can swap this for a queue
without touching producers — they only know :meth:`EventBus.publish`.)

Besides dispatch the bus keeps a bounded history ring and per-type counters,
which the examples and benchmarks use to show what the monitor reacted to.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Type

from .events import Event

__all__ = ["EventBus"]

Handler = Callable[[Event], None]


class EventBus:
    """Publish/subscribe hub for :class:`~repro.online.events.Event`."""

    def __init__(self, history_limit: int = 1024) -> None:
        self._subscribers: List[Tuple[Optional[Type[Event]], Handler]] = []
        self.history: Deque[Event] = deque(maxlen=history_limit)
        self.counts: Dict[str, int] = Counter()

    # ------------------------------------------------------------------ #
    # Subscription
    # ------------------------------------------------------------------ #
    def subscribe(self, handler: Handler, event_type: Optional[Type[Event]] = None) -> Handler:
        """Register ``handler``; with ``event_type`` set, only matching events
        (including subclasses) are delivered to it."""
        self._subscribers.append((event_type, handler))
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        # Equality, not identity: every attribute access on an instance
        # creates a fresh bound-method object, so ``monitor.stop()`` passing
        # ``self._on_event`` must match by ``==`` (same function + instance).
        self._subscribers = [
            (event_type, existing)
            for event_type, existing in self._subscribers
            if existing != handler
        ]

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(self, event: Event) -> int:
        """Dispatch ``event``; returns the number of handlers invoked."""
        self.history.append(event)
        self.counts[type(event).__name__] += 1
        delivered = 0
        for event_type, handler in list(self._subscribers):
            if event_type is None or isinstance(event, event_type):
                handler(event)
                delivered += 1
        return delivered

    def total_events(self) -> int:
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.history)
