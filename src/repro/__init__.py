"""SCOUT: fault localization in large-scale network policy deployment.

A full reproduction of Tammana et al., "Fault Localization in Large-Scale
Network Policy Deployment" (ICDCS 2018), including every substrate the paper
relies on: an APIC-style policy abstraction, a simulated leaf-spine fabric
with switch agents and TCAM, a centralized controller with change logs, an
ROBDD-based L-T equivalence checker, the switch/controller risk models, the
SCOUT and SCORE localization algorithms, the event correlation engine, fault
injection, synthetic workloads and the full evaluation harness.

Quickstart
----------
>>> from repro import PolicyBuilder, Fabric, Controller
>>> # see examples/quickstart.py for the end-to-end 3-tier web example
"""

from .clock import LogicalClock
from .exceptions import (
    DeploymentError,
    FabricError,
    FaultInjectionError,
    LocalizationError,
    PolicyError,
    ReproError,
    RiskModelError,
    TcamError,
    UnknownObjectError,
    ValidationError,
    VerificationError,
    WorkloadError,
)
from .policy import (
    Contract,
    Endpoint,
    Epg,
    EpgPair,
    Filter,
    FilterEntry,
    NetworkPolicy,
    ObjectType,
    PolicyBuilder,
    PolicyIndex,
    Tenant,
    Vrf,
    three_tier_policy,
    validate_policy,
)
from .rules import TcamRule
from .fabric import Fabric, FaultCode, LeafSpineTopology, Switch, TcamTable
from .controller import ControlChannel, Controller

__version__ = "1.0.0"

__all__ = [
    "ControlChannel",
    "Contract",
    "Controller",
    "DeploymentError",
    "Endpoint",
    "Epg",
    "EpgPair",
    "Fabric",
    "FabricError",
    "FaultCode",
    "FaultInjectionError",
    "Filter",
    "FilterEntry",
    "LeafSpineTopology",
    "LocalizationError",
    "LogicalClock",
    "NetworkPolicy",
    "ObjectType",
    "PolicyBuilder",
    "PolicyError",
    "PolicyIndex",
    "ReproError",
    "RiskModelError",
    "Switch",
    "TcamError",
    "TcamRule",
    "TcamTable",
    "Tenant",
    "UnknownObjectError",
    "ValidationError",
    "VerificationError",
    "Vrf",
    "WorkloadError",
    "three_tier_policy",
    "validate_policy",
    "__version__",
]
