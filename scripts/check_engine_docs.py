#!/usr/bin/env python3
"""Gate: docs/engines.md must match the checker's engine vocabulary.

``src/repro/verify/checker.py`` is the single source of truth for the
engine names (the ``ENGINES`` tuple) and the auto-selection defaults
(``DEFAULT_BDD_LIMIT`` / ``DEFAULT_AP_LIMIT``); the engine-internals
chapter documents each engine under a heading shaped like
``### `bdd` — ...`` and states the defaults as ``- `bdd_limit` default:
`4000` ``.  This script parses both by regex — no imports, no workload
generation, so it runs in milliseconds on any interpreter — and exits
non-zero listing every engine that is implemented-but-undocumented or
documented-but-unimplemented, and every default value the chapter gets
wrong.

Usage::

    python scripts/check_engine_docs.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CHECKER_SOURCE = Path("src/repro/verify/checker.py")
ENGINE_DOC = Path("docs/engines.md")

#: ``ENGINES: Tuple[str, ...] = ("auto", "bdd", "ap", "hash")``
ENGINES_RE = re.compile(r"^ENGINES:.*=\s*\((?P<body>[^)]*)\)", re.MULTILINE)

#: ``DEFAULT_BDD_LIMIT = 4000`` (underscore digit grouping allowed)
LIMIT_RE = re.compile(
    r"^DEFAULT_(?P<which>BDD|AP)_LIMIT\s*=\s*(?P<value>[\d_]+)", re.MULTILINE
)

#: ``### `bdd` — exact ROBDD equivalence`` — the documentation idiom.
HEADING_RE = re.compile(r"^#{2,4}\s+`(?P<name>[a-z]+)`\s+—")

#: ``- `bdd_limit` default: `4000` `` — the stated-default idiom.
DEFAULT_RE = re.compile(
    r"`(?P<which>bdd_limit|ap_limit)`\s+default:\s+`(?P<value>[\d_,]+)`"
)


def implemented(checker_source: Path):
    text = checker_source.read_text()
    engines_match = ENGINES_RE.search(text)
    engines = (
        set(re.findall(r'"([a-z]+)"', engines_match.group("body")))
        if engines_match
        else set()
    )
    limits = {
        match.group("which").lower() + "_limit": int(match.group("value"))
        for match in LIMIT_RE.finditer(text)
    }
    return engines, limits


def documented(engine_doc: Path):
    engines = set()
    limits = {}
    for line in engine_doc.read_text().splitlines():
        heading = HEADING_RE.match(line)
        if heading:
            engines.add(heading.group("name"))
        for match in DEFAULT_RE.finditer(line):
            value = int(match.group("value").replace("_", "").replace(",", ""))
            limits[match.group("which")] = value
    return engines, limits


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of this script's directory)",
    )
    args = parser.parse_args(argv)
    checker_source = args.repo_root / CHECKER_SOURCE
    engine_doc = args.repo_root / ENGINE_DOC
    for path in (checker_source, engine_doc):
        if not path.is_file():
            print(f"engine docs: missing {path}", file=sys.stderr)
            return 2

    code_engines, code_limits = implemented(checker_source)
    doc_engines, doc_limits = documented(engine_doc)
    if not code_engines:
        print(
            f"engine docs: no ENGINES tuple parsed from {checker_source}",
            file=sys.stderr,
        )
        return 2
    if not code_limits:
        print(
            f"engine docs: no DEFAULT_*_LIMIT parsed from {checker_source}",
            file=sys.stderr,
        )
        return 2
    if not doc_engines:
        print(
            f"engine docs: no engine headings parsed from {engine_doc}",
            file=sys.stderr,
        )
        return 2

    problems = []
    for name in sorted(code_engines - doc_engines):
        problems.append(f"implemented but not documented: {name}")
    for name in sorted(doc_engines - code_engines):
        problems.append(f"documented but not implemented: {name}")
    for which, value in sorted(code_limits.items()):
        if which not in doc_limits:
            problems.append(f"default not stated in docs: {which} = {value}")
        elif doc_limits[which] != value:
            problems.append(
                f"stale default: docs say {which} = {doc_limits[which]}, "
                f"code says {value}"
            )
    for which in sorted(set(doc_limits) - set(code_limits)):
        problems.append(f"docs state a default the code does not define: {which}")
    for problem in problems:
        print(f"engine docs: {problem}", file=sys.stderr)
    if not problems:
        print(
            f"engine docs: {len(code_engines)} engine(s) and "
            f"{len(code_limits)} default(s) in sync"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
