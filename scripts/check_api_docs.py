#!/usr/bin/env python3
"""Gate: docs/http-api.md must document exactly the routes the service has.

The service registers routes with ``add("METHOD", "/path", handler)`` in
``src/repro/service/app.py``; the API reference documents each one under a
heading shaped like ``### `GET /healthz` ``.  This script parses both by
regex — no imports, no workload generation, so it runs in milliseconds on
any interpreter — and exits non-zero listing every route that is
registered-but-undocumented or documented-but-unregistered.

Usage::

    python scripts/check_api_docs.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

APP_SOURCE = Path("src/repro/service/app.py")
API_DOC = Path("docs/http-api.md")

#: ``add("GET", "/healthz", self._get_healthz)`` — the registration idiom.
ROUTE_RE = re.compile(r'add\(\s*"(?P<method>[A-Z]+)",\s*"(?P<path>/[^"]*)"')

#: ``### `GET /healthz` `` — the documentation idiom.
HEADING_RE = re.compile(r"^#{2,4}\s+`(?P<method>[A-Z]+)\s+(?P<path>/\S+)`\s*$")


def registered_routes(app_source: Path) -> set:
    return {
        (match.group("method"), match.group("path"))
        for match in ROUTE_RE.finditer(app_source.read_text())
    }


def documented_routes(api_doc: Path) -> set:
    routes = set()
    for line in api_doc.read_text().splitlines():
        match = HEADING_RE.match(line)
        if match:
            routes.add((match.group("method"), match.group("path")))
    return routes


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of this script's directory)",
    )
    args = parser.parse_args(argv)
    app_source = args.repo_root / APP_SOURCE
    api_doc = args.repo_root / API_DOC
    for path in (app_source, api_doc):
        if not path.is_file():
            print(f"api docs: missing {path}", file=sys.stderr)
            return 2

    registered = registered_routes(app_source)
    documented = documented_routes(api_doc)
    if not registered:
        print(f"api docs: no routes parsed from {app_source}", file=sys.stderr)
        return 2
    if not documented:
        print(f"api docs: no route headings parsed from {api_doc}", file=sys.stderr)
        return 2

    problems = []
    for method, path in sorted(registered - documented):
        problems.append(f"registered but not documented: {method} {path}")
    for method, path in sorted(documented - registered):
        problems.append(f"documented but not registered: {method} {path}")
    for problem in problems:
        print(f"api docs: {problem}", file=sys.stderr)
    if not problems:
        print(f"api docs: {len(registered)} route(s) in sync")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
