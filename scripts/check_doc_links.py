#!/usr/bin/env python3
"""Gate: relative links in README.md and docs/*.md must resolve on disk.

Scans every ``[text](target)`` in the documentation set and checks that
relative targets exist.  Skipped on purpose: absolute URLs
(``http(s)://``, ``mailto:``), pure in-page anchors (``#section``), and
targets that escape the repository root (the README's CI badge links into
``../../actions/...`` on GitHub, which only resolves on github.com).
In-repo anchors (``file.md#section``) are checked for the *file* part
only — heading slugs are a renderer concern.

Usage::

    python scripts/check_doc_links.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: ``[text](target)`` — excludes images' leading ``!`` by not caring: a
#: broken image path is just as dead as a broken link.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(repo_root: Path) -> list:
    files = [repo_root / "README.md"]
    files.extend(sorted((repo_root / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def check_file(doc: Path, repo_root: Path) -> list:
    problems = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (doc.parent / file_part).resolve()
            try:
                resolved.relative_to(repo_root.resolve())
            except ValueError:
                continue  # escapes the repo (e.g. the CI badge) — not ours
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(repo_root)}:{lineno}: dead link "
                    f"({target!r} -> {resolved})"
                )
    return problems


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of this script's directory)",
    )
    args = parser.parse_args(argv)
    docs = doc_files(args.repo_root)
    if not docs:
        print("doc links: no documentation files found", file=sys.stderr)
        return 2
    problems = []
    checked = 0
    for doc in docs:
        checked += 1
        problems.extend(check_file(doc, args.repo_root))
    for problem in problems:
        print(f"doc links: {problem}", file=sys.stderr)
    if not problems:
        print(f"doc links: {checked} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
